// Regenerates Fig. 5: the top-3 most popular store types per period. The
// paper's point: customer preferences differ across periods (breakfast
// types in the morning, meal types at the rushes, snacks at night), which
// motivates the time dimension of the multi-graph.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "features/analysis.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "fig05_top_types", "Top store types per period",
      "Fig. 5 (top popular store types in different periods)");
  const sim::Dataset data = sim::GenerateDataset(bench::RealDataConfig());
  const auto tops = features::TopTypesByPeriod(data, 3);

  TablePrinter table({"Period", "#1", "#2", "#3"});
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    std::vector<std::string> row = {
        sim::PeriodName(static_cast<sim::Period>(p))};
    for (const auto& t : tops[p]) {
      row.push_back(t.name + " (" + TablePrinter::Num(t.orders, 0) + ")");
    }
    while (row.size() < 4) row.push_back("-");
    table.AddRow(row);
  }
  table.Print(stdout);

  const bool differs =
      tops[static_cast<int>(sim::Period::kMorning)][0].type !=
      tops[static_cast<int>(sim::Period::kNight)][0].type;
  std::printf(
      "\nShape check: the preferred types change along the day "
      "(morning #1 != night #1) -> %s\n",
      differs ? "REPRODUCED" : "MISMATCH");
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    if (!tops[p].empty()) {
      report.AddValue(std::string("top_type/") +
                          sim::PeriodName(static_cast<sim::Period>(p)),
                      tops[p][0].type);
    }
  }
  report.AddValue("reproduced", differs ? 1.0 : 0.0);
  return 0;
}
