// Regenerates Fig. 1: normalized courier count, normalized order count and
// the supply-demand ratio per 2-hour slot. The paper's observation: both
// counts peak at the noon (10-14) and evening (16-20) rush hours, while the
// supply-demand ratio dips exactly there — courier capacity is scarcest at
// the rush.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "features/analysis.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "fig01_supply_demand", "Supply and demand by time of day",
      "Fig. 1 (order and courier count; supply-demand ratio)");
  const sim::Dataset data = sim::GenerateDataset(bench::RealDataConfig());
  const auto series = features::SupplyDemandBySlot(data);

  TablePrinter table({"Hours", "Couriers (norm)", "Orders (norm)",
                      "Supply-demand ratio"});
  for (const auto& s : series) {
    char hours[16];
    std::snprintf(hours, sizeof(hours), "%02d-%02d", 2 * s.slot,
                  2 * s.slot + 2);
    table.AddRow({hours, TablePrinter::Num(s.couriers_norm, 3),
                  TablePrinter::Num(s.orders_norm, 3),
                  TablePrinter::Num(s.supply_demand_ratio, 4)});
    report.AddValue(std::string("supply_demand_ratio/") + hours,
                    s.supply_demand_ratio);
  }
  table.Print(stdout);

  const double noon = series[5].supply_demand_ratio;
  const double evening = series[9].supply_demand_ratio;
  const double afternoon = series[7].supply_demand_ratio;
  std::printf(
      "\nShape check: ratio dips at the rushes (noon %.4f, evening %.4f) "
      "vs afternoon %.4f -> %s\n",
      noon, evening, afternoon,
      (noon < afternoon && evening < afternoon) ? "REPRODUCED" : "MISMATCH");
  report.AddValue("reproduced",
                  (noon < afternoon && evening < afternoon) ? 1.0 : 0.0);
  return 0;
}
