// Regenerates Fig. 2: the relationship between the city-level supply-demand
// ratio and the mean delivery time per 2-hour slot. The paper uses this to
// justify quantifying courier capacity by delivery time: the two series are
// strongly (negatively) related.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "features/analysis.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "fig02_delivery_time_correlation",
      "Delivery time vs supply-demand ratio",
      "Fig. 2 (delivery time and supply-demand ratio per slot)");
  const sim::Dataset data = sim::GenerateDataset(bench::RealDataConfig());

  // Per-slot series over the whole horizon.
  TablePrinter table({"Hours", "Supply-demand ratio", "Mean delivery (min)"});
  std::vector<double> ratio_sum(sim::kSlotsPerDay, 0.0);
  std::vector<double> minutes_sum(sim::kSlotsPerDay, 0.0);
  std::vector<int> counts(sim::kSlotsPerDay, 0);
  for (const sim::SlotStats& s : data.slot_stats) {
    if (s.orders < 10) continue;
    ratio_sum[s.slot] += static_cast<double>(s.active_couriers) / s.orders;
    minutes_sum[s.slot] += s.mean_delivery_minutes;
    ++counts[s.slot];
  }
  for (int slot = 0; slot < sim::kSlotsPerDay; ++slot) {
    if (counts[slot] == 0) continue;
    char hours[16];
    std::snprintf(hours, sizeof(hours), "%02d-%02d", 2 * slot, 2 * slot + 2);
    table.AddRow({hours, TablePrinter::Num(ratio_sum[slot] / counts[slot], 4),
                  TablePrinter::Num(minutes_sum[slot] / counts[slot], 1)});
  }
  table.Print(stdout);

  const double corr = features::DeliveryTimeRatioCorrelation(data);
  std::printf(
      "\nPearson correlation over all (day, slot) samples: %.3f\n"
      "Shape check: strong negative correlation (capacity tight -> slow "
      "delivery) -> %s\n",
      corr, corr < -0.5 ? "REPRODUCED" : "MISMATCH");
  report.AddValue("pearson_correlation", corr);
  report.AddValue("reproduced", corr < -0.5 ? 1.0 : 0.0);
  return 0;
}
