// Regenerates Table II: the Pearson correlation between per-(region, type)
// order counts and the customer preferences of nearby regions, for
// neighborhood radii of 1-5 km. The paper reports ~0.71-0.74 with tiny
// variation between 1 and 3 km and a slow decay beyond; the absolute level
// depends on market density (see DESIGN.md).

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "features/analysis.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "table02_preference_correlation",
      "Customer preference vs order correlation by radius",
      "Table II (correlation between preferences and orders)");
  // A denser market than the model benches: the statistic converges to the
  // paper's level only at Eleme-like store density (~25+ per region).
  sim::SimConfig cfg = bench::RealDataConfig();
  cfg.num_stores = static_cast<int>(cfg.num_stores * 1.8);
  const sim::Dataset data = sim::GenerateDataset(cfg);

  TablePrinter table({"Radius (km)", "Correlation coefficient"});
  std::vector<double> by_radius;
  for (int km = 1; km <= 5; ++km) {
    const double corr =
        features::PreferenceOrderCorrelation(data, km * 1000.0);
    by_radius.push_back(corr);
    table.AddRow({std::to_string(km), TablePrinter::Num(corr, 3)});
    report.AddValue("correlation@" + std::to_string(km) + "km", corr);
  }
  table.Print(stdout);

  const bool strong = by_radius[0] > 0.5 && by_radius[2] > 0.5;
  const bool local_flat = std::abs(by_radius[0] - by_radius[2]) < 0.1;
  const bool decays = by_radius[2] >= by_radius[4] - 0.02;
  std::printf(
      "\nShape check: strong correlation (r1=%.3f, r3=%.3f), tiny 1-3 km "
      "variation, slow decay to 5 km -> %s\n",
      by_radius[0], by_radius[2],
      (strong && local_flat && decays) ? "REPRODUCED" : "MISMATCH");
  report.AddValue("reproduced",
                  (strong && local_flat && decays) ? 1.0 : 0.0);
  return 0;
}
