// Out-of-core dataset scale curves: how ingest (streaming order
// generation into checksummed shards), read-back aggregation and graph
// construction behave as the workload grows from test-sized cities to the
// paper's full §IV-A1 scale (39,465 stores / 23.6M+ orders), and what peak
// RSS that costs against O2SR_MEM_BUDGET_MB.
//
//   O2SR_BENCH_SCALE=small     toy city; the committed regression baseline
//   O2SR_BENCH_SCALE=standard  the repo's default experiment city
//   O2SR_BENCH_SCALE=paper     sim::PaperScaleConfig() — the only bench
//                              that materializes the paper's order volume,
//                              which is exactly why it must stream
//
// BENCH_scale.json records workload shape (stores/orders/shards/blocks,
// exact-matched by tools/bench_diff), wall clocks per stage, and
// peak_rss_mb (direction-aware: growth is a regression). ci.sh gates the
// committed small baseline and, for the paper artifact, asserts the
// acceptance floor: >= 39,465 stores, >= 23M orders, RSS under budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "bench_common.h"
#include "common/check.h"
#include "features/stream_aggregate.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "obs/env.h"
#include "obs/trace.h"
#include "sim/stream.h"
#include "sim/world.h"

namespace {

using namespace o2sr;

// Peak resident set (VmHWM) of this process, in MiB.
double PeakRssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lf", &kb) == 1) break;
  }
  std::fclose(f);
  return kb / 1024.0;
}

sim::SimConfig ScaleConfig(bench::Scale scale) {
  switch (scale) {
    case bench::Scale::kSmall: {
      sim::SimConfig config;
      config.city_width_m = 4000.0;
      config.city_height_m = 4000.0;  // 8x8 = 64 regions
      config.num_store_types = 12;
      config.num_stores = 400;
      config.num_couriers = 220;
      config.num_days = 4;
      config.peak_orders_per_region_slot = 4.0;
      config.seed = 2022;
      return config;
    }
    case bench::Scale::kStandard: {
      sim::SimConfig config;  // the repo's default experiment city
      config.num_days = 8;
      config.seed = 2022;
      return config;
    }
    case bench::Scale::kPaper:
      return sim::PaperScaleConfig();
  }
  return sim::SimConfig();
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main() {
  bench::BenchReport report(
      "scale", "Out-of-core dataset: ingest, read-back and graph build",
      "dataset scale of §IV-A1 (39,465 stores / 23.6M orders)");
  const bench::Scale scale = bench::CurrentScale();
  const sim::SimConfig config = ScaleConfig(scale);

  sim::StreamOptions options;
  options.data_dir = obs::EnvString(
      "O2SR_DATA_DIR",
      std::string("bench_scale_data_") + bench::ScaleName(scale));

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  sim::StreamResult ingest;
  {
    O2SR_TRACE_SCOPE("bench.ingest");
    auto result = sim::StreamGenerate(config, options);
    O2SR_CHECK_OK(result.status());
    ingest = *result;
  }
  const auto t1 = clock::now();

  sim::SpillReadReport read_report;
  features::OrderStats stats(0, 0);
  int num_regions = 0;
  int num_types = 0;
  {
    O2SR_TRACE_SCOPE("bench.aggregate");
    auto reader = sim::DatasetReader::Open(config, ingest.data_dir,
                                           sim::SpillReadOptions());
    O2SR_CHECK_OK(reader.status());
    num_regions = reader->world().num_regions();
    num_types = reader->world().num_types();
    auto aggregated = features::AggregateSpill(*reader, &read_report);
    O2SR_CHECK_OK(aggregated.status());
    stats = std::move(*aggregated);
  }
  const auto t2 = clock::now();

  size_t hetero_nodes = 0;
  size_t mobility_edges = 0;
  {
    O2SR_TRACE_SCOPE("bench.graphs");
    // The aggregate-consuming build path: an orders-free world dataset
    // plus streamed stats — no raw order log in memory, ever.
    auto reader = sim::DatasetReader::Open(config, ingest.data_dir,
                                           sim::SpillReadOptions());
    O2SR_CHECK_OK(reader.status());
    const sim::Dataset world_data = sim::WorldDataset(reader->world());
    const graphs::HeteroMultiGraph hetero(world_data, stats);
    const graphs::MobilityMultiGraph mobility(stats);
    hetero_nodes = hetero.num_store_nodes() + hetero.num_customer_nodes();
    mobility_edges = mobility.TotalEdges();
  }
  const auto t3 = clock::now();

  const double peak_rss_mb = PeakRssMb();
  const double budget_mb = ingest.resolved_mem_budget_mb;
  std::printf(
      "\n  stores=%d  regions=%d  types=%d  epochs=%d\n"
      "  orders=%llu  shards=%d x %llu-row avg  blocks=%d x %d regions\n"
      "  ingest=%.2fs  aggregate=%.2fs  graphs=%.2fs\n"
      "  hetero_nodes=%zu  mobility_edges=%zu\n"
      "  peak_rss=%.1f MiB  budget=%.0f MiB  %s\n\n",
      config.num_stores, num_regions, num_types, ingest.epochs,
      static_cast<unsigned long long>(ingest.total_rows),
      ingest.shards_written + ingest.shards_skipped,
      static_cast<unsigned long long>(
          ingest.total_rows /
          std::max(1, ingest.shards_written + ingest.shards_skipped)),
      ingest.num_blocks, ingest.block_regions, Seconds(t0, t1),
      Seconds(t1, t2), Seconds(t2, t3), hetero_nodes, mobility_edges,
      peak_rss_mb, budget_mb,
      peak_rss_mb <= budget_mb ? "(within budget)" : "OVER BUDGET");

  report.AddValue("stores", config.num_stores);
  report.AddValue("regions", num_regions);
  report.AddValue("types", num_types);
  report.AddValue("epochs", ingest.epochs);
  report.AddValue("block_regions", ingest.block_regions);
  report.AddValue("blocks", ingest.num_blocks);
  report.AddValue("shards", ingest.shards_written + ingest.shards_skipped);
  report.AddValue("orders", static_cast<double>(ingest.total_rows));
  report.AddValue("mem_budget_mb", budget_mb);
  report.AddValue("peak_rss_mb", peak_rss_mb);
  report.AddValue("gen_wall_s", Seconds(t0, t1));
  report.AddValue("read_wall_s", Seconds(t1, t2));
  report.AddValue("graph_wall_s", Seconds(t2, t3));
  report.AddValue("quarantined", read_report.quarantined);
  return 0;
}
