// Regenerates Fig. 16: NDCG@3 as a function of the loss trade-off beta
// (Loss = O2 + beta * O1, Eq. 17). The paper finds overall performance
// stable with the best value at beta = 0.2: some auxiliary delivery-time
// supervision helps the capacity embeddings without drowning the main task.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("fig16_beta", "Loss trade-off sensitivity",
                            "Fig. 16 (performance with different beta)");
  bench::PreparedData prepared(bench::SweepConfig(), /*split_seed=*/1);
  eval::EvalOptions opts = bench::EvalDefaults();
  opts.min_candidates = std::max(20, opts.min_candidates / 2);

  const std::vector<double> betas =
      bench::CurrentScale() != bench::Scale::kSmall
          ? std::vector<double>{0.0, 0.1, 0.2, 0.5, 1.0}
          : std::vector<double>{0.0, 0.2, 1.0};
  TablePrinter table({"beta", "NDCG@3", "RMSE"});
  double best = 0.0, worst = 1.0;
  for (double beta : betas) {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.beta = beta;
    core::O2SiteRecRecommender model(cfg);
    const eval::EvalResult r =
        eval::RunOnce(model, prepared.data, prepared.split, opts).value();
    best = std::max(best, r.ndcg.at(3));
    worst = std::min(worst, r.ndcg.at(3));
    report.AddResult("beta=" + TablePrinter::Num(beta, 1), r);
    table.AddRow({TablePrinter::Num(beta, 1), TablePrinter::Num(r.ndcg.at(3)),
                  TablePrinter::Num(r.rmse)});
  }
  table.Print(stdout);

  std::printf(
      "\nShape check: overall performance stable across beta "
      "(spread %.4f) -> %s\n",
      best - worst, best - worst < 0.12 ? "REPRODUCED" : "PARTIAL");
  report.AddValue("ndcg3_spread", best - worst);
  report.AddValue("reproduced", best - worst < 0.12 ? 1.0 : 0.0);
  return 0;
}
