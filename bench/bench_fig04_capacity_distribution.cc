// Regenerates Fig. 4: the distribution of delivery times for orders within
// the same distance band (2.5-3 km) across the five periods. Delivery time
// varies under a fixed distance because courier capacity varies; at the
// rushes the distribution shifts right and long waits cost orders.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "features/analysis.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "fig04_capacity_distribution",
      "Delivery-time distribution at 2.5-3 km",
      "Fig. 4 (delivery time distribution under the same distance)");
  const sim::Dataset data = sim::GenerateDataset(bench::RealDataConfig());
  const auto dist = features::DeliveryTimeDistributionByPeriod(data);

  TablePrinter table({"Period", "10-20min", "20-30min", "30-40min",
                      "40-50min", "50+min"});
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    std::vector<std::string> row = {
        sim::PeriodName(static_cast<sim::Period>(p))};
    for (double share : dist.share[p]) {
      row.push_back(TablePrinter::Num(share, 3));
    }
    table.AddRow(row);
  }
  table.Print(stdout);

  const auto& noon = dist.share[static_cast<int>(sim::Period::kNoonRush)];
  const auto& afternoon =
      dist.share[static_cast<int>(sim::Period::kAfternoon)];
  const double noon_long = noon[3] + noon[4];
  const double afternoon_long = afternoon[3] + afternoon[4];
  std::printf(
      "\nShape check: share of 40+ minute deliveries larger at the noon rush "
      "(%.3f) than in the afternoon (%.3f) -> %s\n",
      noon_long, afternoon_long,
      noon_long > afternoon_long ? "REPRODUCED" : "MISMATCH");
  report.AddValue("noon_rush_40plus_share", noon_long);
  report.AddValue("afternoon_40plus_share", afternoon_long);
  report.AddValue("reproduced", noon_long > afternoon_long ? 1.0 : 0.0);
  return 0;
}
