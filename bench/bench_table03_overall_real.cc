// Regenerates Table III: the overall comparison of O2-SiteRec against the
// six baselines (each in Original and Adaption settings) on the
// synthetic-Eleme dataset, reporting NDCG@{3,5,10}, Precision@{3,5,10} and
// RMSE, plus a Welch t-test of O2-SiteRec against the strongest baseline
// (HGT) over multiple seeds.
//
// Expected shape (paper): O2-SiteRec wins every metric; heterogeneous-graph
// and graph-based methods beat plain matrix factorization; Adaption
// features help the site-recommendation baselines.

#include <chrono>
#include <cstdio>

#include "baselines/factory.h"
#include "bench_common.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "table03_overall_real", "Overall performance, synthetic-Eleme dataset",
      "Table III (performance comparison, real-world data)");
  const auto t0 = std::chrono::steady_clock::now();
  bench::PreparedData prepared(bench::RealDataConfig(), /*split_seed=*/1);
  const eval::EvalOptions opts = bench::EvalDefaults();
  std::printf("dataset: %zu orders, %d regions, %d types, %zu interactions\n",
              prepared.data.orders.size(), prepared.data.num_regions(),
              prepared.data.num_types(),
              prepared.split.train.size() + prepared.split.test.size());

  TablePrinter table({"Model", "Setting", "NDCG@3", "NDCG@5", "NDCG@10",
                      "Precision@3", "Precision@5", "Precision@10", "RMSE"});

  auto run_once = [&](core::SiteRecommender& model) {
    return eval::RunOnce(model, prepared.data, prepared.split, opts).value();
  };

  const int kSeeds = bench::CurrentScale() != bench::Scale::kSmall ? 3 : 2;
  report.set_seed_count(kSeeds);
  std::vector<double> hgt_ndcg3, ours_ndcg3;

  for (auto kind : baselines::kAllBaselines) {
    for (auto setting : {baselines::FeatureSetting::kOriginal,
                         baselines::FeatureSetting::kAdaption}) {
      baselines::BaselineConfig cfg = bench::BaselineDefaults();
      cfg.setting = setting;
      if (kind == baselines::BaselineKind::kHgt &&
          setting == baselines::FeatureSetting::kAdaption) {
        // Multi-seed row for the significance test.
        std::vector<eval::EvalResult> results;
        for (int s = 0; s < kSeeds; ++s) {
          cfg.seed = 11 + s;
          auto model = baselines::MakeBaseline(kind, cfg);
          results.push_back(run_once(*model));
          hgt_ndcg3.push_back(results.back().ndcg.at(3));
        }
        const eval::EvalResult avg = bench::AverageResults(results);
        report.AddResult("HGT/Adaption", avg);
        table.AddRow([&] {
          std::vector<std::string> row = {"HGT", "Adaption"};
          for (auto& c : bench::MetricCells(avg)) row.push_back(c);
          return row;
        }());
      } else {
        auto model = baselines::MakeBaseline(kind, cfg);
        const eval::EvalResult r = run_once(*model);
        report.AddResult(std::string(baselines::BaselineKindName(kind)) + "/" +
                             baselines::FeatureSettingName(setting),
                         r);
        std::vector<std::string> row = {
            baselines::BaselineKindName(kind),
            baselines::FeatureSettingName(setting)};
        for (auto& c : bench::MetricCells(r)) row.push_back(c);
        table.AddRow(row);
      }
    }
  }

  std::vector<eval::EvalResult> ours_results;
  for (int s = 0; s < kSeeds; ++s) {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.seed = 21 + s;
    core::O2SiteRecRecommender ours(cfg);
    ours_results.push_back(run_once(ours));
    ours_ndcg3.push_back(ours_results.back().ndcg.at(3));
  }
  {
    const eval::EvalResult avg = bench::AverageResults(ours_results);
    report.AddResult("O2-SiteRec", avg);
    std::vector<std::string> row = {"O2-SiteRec", "-"};
    for (auto& c : bench::MetricCells(avg)) row.push_back(c);
    table.AddRow(row);
  }
  table.Print(stdout);

  const TTestResult t = WelchTTest(ours_ndcg3, hgt_ndcg3);
  std::printf(
      "\nWelch t-test, O2-SiteRec vs HGT/Adaption on NDCG@3 over %d seeds: "
      "t=%.2f, p=%.4f %s\n",
      kSeeds, t.t_statistic, t.p_value,
      t.p_value < 0.05 ? "(significant at 0.05)" : "(not significant)");
  const double improvement =
      (Mean(ours_ndcg3) - Mean(hgt_ndcg3)) / Mean(hgt_ndcg3) * 100.0;
  std::printf("Relative NDCG@3 improvement over HGT: %.2f%% (paper: 12.18%%)\n",
              improvement);
  report.AddValue("welch_t_statistic", t.t_statistic);
  report.AddValue("welch_p_value", t.p_value);
  report.AddValue("ndcg3_improvement_over_hgt_pct", improvement);
  std::printf("total time: %.0fs\n",
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0).count());
  return 0;
}
