// Staleness cost under drift: how much ranking quality a deployed model
// loses as the city drifts away from its training window, and what a
// warm-started refresh buys back. The continual pipeline (src/pipeline)
// exists to close exactly this gap; this bench measures the gap itself.
//
// For each drift epoch e = 1..E the drifted world is regenerated
// (sim/drift.h: stores open/close, cuisine popularity walks, rush hours
// shift) and two models are evaluated on its held-out split:
//
//   stale      trained once on epoch 0, never refreshed
//   refreshed  warm-start retrained on each drifted window (donor = the
//              previous refresh, exactly as the pipeline's RETRAIN stage)
//
// Reported per epoch: NDCG@{3,5,10} for both models on the pairs both can
// score, plus the refresh recovery wall-clock. BENCH_drift.json carries
// the series; ci.sh asserts refreshed mean NDCG >= stale mean NDCG.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"
#include "nn/serialize.h"
#include "sim/drift.h"

namespace {

using namespace o2sr;

sim::DriftConfig DriftSpec() {
  sim::DriftConfig drift;
  drift.store_close_rate = 0.12;
  drift.store_open_rate = 0.15;
  drift.popularity_walk_sigma = 0.55;
  drift.rush_shift_slots = 0.9;
  drift.seed = 41;
  return drift;
}

}  // namespace

int main() {
  bench::BenchReport report(
      "drift", "Staleness cost under city drift",
      "continual-retraining extension (OpenSiteRec motivates the drifting "
      "multi-city setting)");
  const bool standard = bench::CurrentScale() != bench::Scale::kSmall;
  const int drift_epochs = standard ? 4 : 2;
  const sim::SimConfig base = bench::SweepConfig();
  const sim::DriftConfig drift = DriftSpec();
  core::O2SiteRecConfig model_config = bench::ModelConfig();

  eval::EvalOptions opts = bench::EvalDefaults();
  opts.min_candidates = std::max(20, opts.min_candidates / 2);

  const auto MakeContext = [](const bench::PreparedData& prepared) {
    return bench::MakeTrainContext(prepared);
  };

  // Epoch 0: the model every later epoch serves stale.
  bench::PreparedData base_world(base, /*split_seed=*/1);
  core::O2SiteRecRecommender stale(model_config);
  {
    const core::TrainContext ctx = MakeContext(base_world);
    O2SR_CHECK_OK(stale.Train(ctx));
  }
  std::vector<nn::NamedTensor> donor =
      nn::ExtractNamedTensors(*stale.parameter_store());

  TablePrinter table({"Drift epoch", "stale NDCG@3", "refreshed NDCG@3",
                      "pairs", "recovery s"});
  double stale_sum3 = 0.0, refreshed_sum3 = 0.0;
  const std::vector<int> ks = {3, 5, 10};

  for (int e = 1; e <= drift_epochs; ++e) {
    sim::DriftStats stats;
    sim::Dataset drifted =
        sim::GenerateDriftedDataset(base, drift, e, &stats);
    const core::InteractionList interactions =
        eval::BuildInteractions(drifted);
    const eval::Split split =
        eval::SplitInteractions(drifted, interactions, {0.8, 1});

    // Warm-start refresh on the drifted window (the pipeline's RETRAIN).
    const auto refresh_start = std::chrono::steady_clock::now();
    core::O2SiteRecRecommender refreshed(model_config);
    {
      core::TrainContext ctx;
      ctx.data = &drifted;
      ctx.visible_orders = &split.train_orders;
      ctx.train = &split.train;
      ctx.warm_start = &donor;
      O2SR_CHECK_OK(refreshed.Train(ctx));
    }
    const double recovery_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      refresh_start)
            .count();
    donor = nn::ExtractNamedTensors(*refreshed.parameter_store());

    // Evaluate both on the pairs both can score (the stale model has no
    // node for regions whose stores only exist post-drift, and vice
    // versa).
    core::InteractionList test;
    for (const core::Interaction& it : split.test) {
      if (stale.CanScoreRegion(it.region) &&
          refreshed.CanScoreRegion(it.region)) {
        test.push_back(it);
      }
    }
    const std::vector<double> stale_pred = stale.Predict(test).value();
    const std::vector<double> refreshed_pred =
        refreshed.Predict(test).value();
    const eval::EvalResult stale_result =
        eval::Evaluate(test, stale_pred, opts);
    const eval::EvalResult refreshed_result =
        eval::Evaluate(test, refreshed_pred, opts);

    stale_sum3 += stale_result.ndcg.at(3);
    refreshed_sum3 += refreshed_result.ndcg.at(3);
    for (int k : ks) {
      report.AddValue("epoch" + std::to_string(e) + "_stale_ndcg" +
                          std::to_string(k),
                      stale_result.ndcg.at(k));
      report.AddValue("epoch" + std::to_string(e) + "_refreshed_ndcg" +
                          std::to_string(k),
                      refreshed_result.ndcg.at(k));
    }
    report.AddValue("epoch" + std::to_string(e) + "_recovery_s", recovery_s);
    report.AddResult("stale_epoch" + std::to_string(e), stale_result);
    report.AddResult("refreshed_epoch" + std::to_string(e),
                     refreshed_result);
    table.AddRow({std::to_string(e),
                  TablePrinter::Num(stale_result.ndcg.at(3)),
                  TablePrinter::Num(refreshed_result.ndcg.at(3)),
                  std::to_string(test.size()),
                  TablePrinter::Num(recovery_s)});
  }
  table.Print(stdout);

  const double stale_mean = stale_sum3 / drift_epochs;
  const double refreshed_mean = refreshed_sum3 / drift_epochs;
  report.AddValue("stale_mean_ndcg3", stale_mean);
  report.AddValue("refreshed_mean_ndcg3", refreshed_mean);
  report.AddValue("staleness_gap_ndcg3", refreshed_mean - stale_mean);
  std::printf(
      "\nStaleness check: refreshed mean NDCG@3 %.4f vs stale %.4f "
      "(gap %+.4f) -> %s\n",
      refreshed_mean, stale_mean, refreshed_mean - stale_mean,
      refreshed_mean >= stale_mean ? "REFRESH WINS" : "UNEXPECTED");
  return refreshed_mean >= stale_mean ? 0 : 1;
}
