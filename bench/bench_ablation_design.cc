// Ablation of this reproduction's own design choices (beyond the paper's
// Fig. 10-11): the Eq. 2 sign fix (closer geographic neighbors weighted
// more vs the paper's literal farther-is-more), the number of node-level
// attention heads, and the number of aggregation layers. DESIGN.md calls
// these out; this bench quantifies them.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("ablation_design", "Design-choice ablations",
                            "DESIGN.md deviations (not a paper figure)");
  bench::PreparedData prepared(bench::SweepConfig(), /*split_seed=*/1);
  eval::EvalOptions opts = bench::EvalDefaults();
  opts.min_candidates = std::max(20, opts.min_candidates / 2);

  TablePrinter table({"Configuration", "NDCG@3", "Precision@3", "RMSE"});
  auto run = [&](const std::string& name, const core::O2SiteRecConfig& cfg) {
    core::O2SiteRecRecommender model(cfg);
    const eval::EvalResult r =
        eval::RunOnce(model, prepared.data, prepared.split, opts).value();
    report.AddResult(name, r);
    table.AddRow({name, TablePrinter::Num(r.ndcg.at(3)),
                  TablePrinter::Num(r.precision.at(3)),
                  TablePrinter::Num(r.rmse)});
    return r.ndcg.at(3);
  };

  const double base = run("default (4 heads, 2 layers)", bench::ModelConfig());

  {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.rec.node_heads = 1;
    run("1 attention head", cfg);
  }
  {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.rec.layers = 1;
    run("1 aggregation layer", cfg);
  }
  {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.capacity.geo_layers = 0;
    run("no geographic aggregation (capacity)", cfg);
  }
  {
    // Approximates the paper's literal Eq. 2 (far neighbors dominate) by
    // inverting the distance scale sign via a negative scale.
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.capacity.geo_distance_scale_m = -800.0;
    run("Eq. 2 literal sign (far neighbors weighted more)", cfg);
  }
  table.Print(stdout);
  std::printf("\nDefault NDCG@3 %.4f; rows quantify each deviation's cost.\n",
              base);
  return 0;
}
