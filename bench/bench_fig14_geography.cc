// Regenerates Fig. 14: O2-SiteRec's performance across geographic region
// classes — downtown, suburb, and average (all regions). Expected shape:
// downtown slightly above average, suburb below both (sparser data, weaker
// features).

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("fig14_geography",
                            "Performance by geographic distribution",
                            "Fig. 14 (downtown / suburb / average regions)");
  bench::PreparedData prepared(bench::RealDataConfig(), /*split_seed=*/1);
  eval::EvalOptions opts = bench::EvalDefaults();

  core::O2SiteRecRecommender ours(bench::ModelConfig());
  O2SR_CHECK_OK(ours.Train(bench::MakeTrainContext(prepared)));
  const std::vector<double> preds =
      ours.Predict(prepared.split.test).value();

  const geo::Grid& grid = prepared.data.city.grid;
  std::vector<bool> downtown(grid.NumRegions());
  std::vector<bool> suburb(grid.NumRegions());
  std::vector<bool> all(grid.NumRegions(), true);
  for (int r = 0; r < grid.NumRegions(); ++r) {
    const double d = grid.CenterDistanceNorm(r);
    downtown[r] = d < 0.4;
    suburb[r] = d >= 0.6;
  }

  auto evaluate = [&](const std::vector<bool>& keep) {
    return eval::EvaluateRegions(prepared.split.test, preds, keep, opts);
  };
  const eval::EvalResult r_down = evaluate(downtown);
  const eval::EvalResult r_sub = evaluate(suburb);
  const eval::EvalResult r_all = evaluate(all);

  TablePrinter table({"Region class", "NDCG@3", "Precision@3", "RMSE",
                      "Types evaluated"});
  auto add = [&](const char* name, const eval::EvalResult& r) {
    report.AddResult(name, r);
    const auto n3 = r.ndcg.find(3);
    const auto p3 = r.precision.find(3);
    table.AddRow({name,
                  TablePrinter::Num(n3 == r.ndcg.end() ? 0.0 : n3->second),
                  TablePrinter::Num(
                      p3 == r.precision.end() ? 0.0 : p3->second),
                  TablePrinter::Num(r.rmse),
                  std::to_string(r.types_evaluated)});
  };
  add("downtown", r_down);
  add("suburb", r_sub);
  add("average", r_all);
  table.Print(stdout);

  const double down3 = r_down.ndcg.count(3) ? r_down.ndcg.at(3) : 0.0;
  const double sub3 = r_sub.ndcg.count(3) ? r_sub.ndcg.at(3) : 0.0;
  std::printf(
      "\nShape check: suburb (%.4f) below downtown (%.4f) -> %s\n", sub3,
      down3, sub3 < down3 ? "REPRODUCED" : "PARTIAL");
  report.AddValue("reproduced", sub3 < down3 ? 1.0 : 0.0);
  return 0;
}
