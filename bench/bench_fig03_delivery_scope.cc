// Regenerates Fig. 3: the average delivery scope of stores (farthest
// delivery distance) in the five daily periods. The platform's pressure
// control shrinks the scope when courier capacity is tight, so the scope is
// smallest at the noon and evening rushes.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "features/analysis.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("fig03_delivery_scope",
                            "Delivery scope per period",
                            "Fig. 3 (average farthest delivery distance)");
  const sim::Dataset data = sim::GenerateDataset(bench::RealDataConfig());
  const auto scope = features::DeliveryScopeByPeriod(data);

  TablePrinter table({"Period", "Avg farthest distance (m)",
                      "Applied scope factor"});
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    table.AddRow({sim::PeriodName(static_cast<sim::Period>(p)),
                  TablePrinter::Num(scope[p], 0),
                  TablePrinter::Num(data.scope_factor_per_period[p], 3)});
    report.AddValue(std::string("scope_m/") +
                        sim::PeriodName(static_cast<sim::Period>(p)),
                    scope[p]);
  }
  table.Print(stdout);

  const double noon = scope[static_cast<int>(sim::Period::kNoonRush)];
  const double afternoon = scope[static_cast<int>(sim::Period::kAfternoon)];
  const double evening = scope[static_cast<int>(sim::Period::kEveningRush)];
  const double night = scope[static_cast<int>(sim::Period::kNight)];
  std::printf(
      "\nShape check: rush-hour scope below off-peak scope "
      "(noon %.0f < afternoon %.0f, evening %.0f < night %.0f) -> %s\n",
      noon, afternoon, evening, night,
      (noon < afternoon && evening < night) ? "REPRODUCED" : "MISMATCH");
  report.AddValue("reproduced",
                  (noon < afternoon && evening < night) ? 1.0 : 0.0);
  return 0;
}
