// Serving throughput: replays a synthetic query stream (mixed store types,
// Zipf-skewed candidate regions) against a ServingEngine and reports QPS,
// latency quantiles and cache hit-rate into BENCH_serving.json.
//
// Two passes over the same stream: the first starts with a cold score
// cache (every pair goes through the model), the second replays warm.
// Because scores are deterministic, the warm pass returns identical
// rankings — the delta is pure throughput, which is the point of the
// cache. The bench asserts nothing; ci.sh checks qps_warm > qps_cold from
// the JSON.
//
// A third pass replays the stream against a fresh engine under *deadlines*
// (DESIGN.md §10): queries arrive on a fixed cadence faster than the cold
// engine can serve, each carrying a small budget from its scheduled
// arrival. When the engine falls behind, lagging requests are already out
// of budget at admission and are shed instead of queueing, so the p99 of
// the requests actually served stays bounded — the JSON records that p99
// and the shed-rate next to the no-deadline numbers.
//
// A fourth pass measures the multi-tenant saturation curve (DESIGN.md
// §14): four cities, each a model trained on its own simulated world,
// hosted side by side in one TenantRegistry. N closed-loop driver threads
// (N in {1, 2, 4}) round-robin batched requests (RankSitesBatch, batch
// size O2SR_SERVE_BATCH) across the tenants; the JSON records QPS and p99
// per thread count plus the 4-thread-over-1-thread speedup. At standard
// scale the three points together push over a million queries through the
// registry.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/o2siterec_recommender.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/engine.h"
#include "serve/score_cache.h"
#include "serve/tenant.h"

namespace {

using namespace o2sr;

struct Query {
  int type = 0;
  std::vector<int> candidates;
};

// Zipf-skewed sampling over a popularity ranking of the store regions:
// candidate r is drawn with weight 1 / (rank + 1), so a few hot regions
// dominate the stream the way hot city districts dominate real site
// queries.
std::vector<Query> MakeQueryStream(int num_queries, int candidates_per_query,
                                   const std::vector<int>& regions,
                                   int num_types, Rng& rng) {
  std::vector<double> weights(regions.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  std::vector<Query> stream(num_queries);
  for (Query& q : stream) {
    q.type = rng.UniformInt(0, num_types - 1);
    q.candidates.resize(candidates_per_query);
    for (int& c : q.candidates) {
      c = regions[rng.Categorical(weights)];
    }
  }
  return stream;
}

double ReplayQps(const serve::ServingEngine& engine,
                 const std::vector<Query>& stream, int k) {
  const auto start = std::chrono::steady_clock::now();
  for (const Query& q : stream) {
    O2SR_CHECK_OK(engine.RankSites(q.type, q.candidates, k).status());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(stream.size()) / std::max(seconds, 1e-9);
}

double QuantileOf(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(
                                                 values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(idx), values.end());
  return values[idx];
}

struct DeadlineReplay {
  double period_ms = 0.0;  // arrival cadence
  double budget_ms = 0.0;  // per-query budget from scheduled arrival
  double qps = 0.0;
  double p99_ms = 0.0;     // over served (non-shed) queries only
  uint64_t shed = 0;       // rejected at admission (pre-expired deadline)
  double shed_rate = 0.0;
  double degraded_rate = 0.0;  // served below fresh tier
  double failed_rate = 0.0;    // expired mid-flight, ladder exhausted
};

// Replays the stream under per-request deadlines against a cold engine.
// Queries arrive on a fixed cadence `overload` times faster than the cold
// engine's measured throughput, each with a small budget counted from its
// *scheduled* arrival. Once the engine lags more than the budget, the
// laggards are pre-expired at admission and shed — the served p99 stays
// bounded at roughly the budget while the shed-rate absorbs the overload.
DeadlineReplay ReplayWithDeadlines(const serve::ServingEngine& engine,
                                   const std::vector<Query>& stream, int k,
                                   double qps_cold, double overload) {
  DeadlineReplay out;
  out.period_ms = 1000.0 / std::max(qps_cold * overload, 1.0);
  out.budget_ms = 4.0 * out.period_ms;

  std::vector<double> served_ms;
  served_ms.reserve(stream.size());
  uint64_t degraded = 0, failed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < stream.size(); ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        out.period_ms * static_cast<double>(i)));
    auto now = std::chrono::steady_clock::now();
    if (now < arrival) {  // ahead of schedule: wait for the arrival
      std::this_thread::sleep_until(arrival);
      now = std::chrono::steady_clock::now();
    }
    const double remaining_ms =
        out.budget_ms -
        std::chrono::duration<double, std::milli>(now - arrival).count();

    serve::RankRequest request;
    request.type = stream[i].type;
    request.candidates = stream[i].candidates;
    request.k = k;
    request.deadline = serve::Deadline::AfterMs(remaining_ms);
    const auto response = engine.Rank(request);
    if (response.ok()) {
      served_ms.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - now)
                              .count());
      if (response->tier != serve::ServeTier::kFresh) ++degraded;
    } else if (response.status().code() ==
               common::StatusCode::kResourceExhausted) {
      // Admission-time sheds carry the engine's "request shed" marker; a
      // RESOURCE_EXHAUSTED without it expired mid-flight and exhausted the
      // fallback ladder.
      if (response.status().message().find("request shed") !=
          std::string::npos) {
        ++out.shed;
      } else {
        ++failed;
      }
    } else {
      O2SR_CHECK_OK(response.status());
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double total = static_cast<double>(stream.size());
  out.qps = static_cast<double>(served_ms.size()) / std::max(seconds, 1e-9);
  out.p99_ms = QuantileOf(std::move(served_ms), 0.99);
  out.shed_rate = static_cast<double>(out.shed) / total;
  out.degraded_rate = static_cast<double>(degraded) / total;
  out.failed_rate = static_cast<double>(failed) / total;
  return out;
}

// --- Multi-tenant saturation (DESIGN.md §14) ---------------------------

// One hosted city: its trained model lives in the registry; the bench
// keeps the pre-built request stream.
struct TenantWorkload {
  std::string name;
  std::vector<serve::RankRequest> requests;  // length divisible by batch
};

struct SaturationPoint {
  int threads = 0;
  uint64_t queries = 0;
  double qps = 0.0;
  double p99_ms = 0.0;
};

// N closed-loop driver threads, each pinning every tenant once and
// round-robining batched spans across them. Per-query latency is the
// batch wall time divided across its span (the driver observes batches,
// not requests). Every response must be OK: the tenants are healthy and
// nothing sheds by construction.
SaturationPoint RunSaturationPoint(serve::TenantRegistry& registry,
                                   const std::vector<TenantWorkload>& tenants,
                                   int threads, uint64_t total_queries,
                                   int batch) {
  SaturationPoint point;
  point.threads = threads;
  const uint64_t per_thread =
      (total_queries / (static_cast<uint64_t>(threads) *
                        static_cast<uint64_t>(batch))) *
      static_cast<uint64_t>(batch);
  point.queries = per_thread * static_cast<uint64_t>(threads);

  std::vector<std::vector<double>> latencies(threads);
  std::atomic<uint64_t> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      std::vector<serve::TenantRegistry::TenantPtr> pins;
      pins.reserve(tenants.size());
      for (const TenantWorkload& tenant : tenants) {
        pins.push_back(registry.Get(tenant.name).value());
      }
      std::vector<double>& out = latencies[t];
      out.reserve(per_thread);
      // Decorrelated start offsets so threads do not march in lockstep
      // over the same keys.
      std::vector<size_t> offsets(tenants.size());
      for (size_t i = 0; i < offsets.size(); ++i) {
        offsets[i] = (static_cast<size_t>(t) * 977 * batch) %
                     tenants[i].requests.size();
      }
      size_t which = static_cast<size_t>(t) % tenants.size();
      for (uint64_t issued = 0; issued < per_thread;
           issued += static_cast<uint64_t>(batch)) {
        const TenantWorkload& tenant = tenants[which];
        size_t& offset = offsets[which];
        const std::span<const serve::RankRequest> span(
            tenant.requests.data() + offset, static_cast<size_t>(batch));
        const auto batch_start = std::chrono::steady_clock::now();
        const auto responses = pins[which]->engine->RankSitesBatch(span);
        const double batch_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - batch_start)
                .count();
        for (const auto& response : responses) {
          if (!response.ok()) failures.fetch_add(1);
        }
        const double per_query_ms = batch_ms / static_cast<double>(batch);
        for (int j = 0; j < batch; ++j) out.push_back(per_query_ms);
        offset = (offset + static_cast<size_t>(batch)) %
                 tenant.requests.size();
        which = (which + 1) % tenants.size();
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  O2SR_CHECK(failures.load() == 0);

  std::vector<double> merged;
  merged.reserve(point.queries);
  for (std::vector<double>& per_thread_ms : latencies) {
    merged.insert(merged.end(), per_thread_ms.begin(), per_thread_ms.end());
  }
  point.qps = static_cast<double>(point.queries) / std::max(seconds, 1e-9);
  point.p99_ms = QuantileOf(std::move(merged), 0.99);
  return point;
}

}  // namespace

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "serving", "Online serving: cached top-K ranking throughput",
      "serving engine (no paper counterpart)");

  const bench::Scale scale = bench::CurrentScale();
  const int num_queries = scale == bench::Scale::kSmall ? 1500 : 6000;
  const int candidates_per_query = 48;
  const int k = 10;

  sim::SimConfig world = bench::SweepConfig();
  bench::PreparedData prepared(world, /*split_seed=*/3);

  core::O2SiteRecConfig model_cfg;
  model_cfg.rec.embedding_dim = 24;
  model_cfg.epochs = scale == bench::Scale::kSmall ? 4 : 10;
  core::O2SiteRecRecommender model(model_cfg);
  O2SR_CHECK_OK(model.Train(bench::MakeTrainContext(prepared)));

  // Scorable store regions; the Zipf head of the stream concentrates on
  // the first few of them.
  std::vector<int> regions;
  for (int r = 0; r < prepared.data.num_regions(); ++r) {
    if (model.CanScoreRegion(r)) regions.push_back(r);
  }
  O2SR_CHECK(!regions.empty());

  Rng rng(123);
  const std::vector<Query> stream = MakeQueryStream(
      num_queries, candidates_per_query, regions,
      prepared.data.num_types(), rng);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const auto engine = serve::ServingEngine::Create(&model).value();

  const double qps_cold = ReplayQps(*engine, stream, k);
  const uint64_t cold_hits = registry.GetCounter("serve.cache.hits")->value();
  const uint64_t cold_misses =
      registry.GetCounter("serve.cache.misses")->value();

  const double qps_warm = ReplayQps(*engine, stream, k);
  const uint64_t total_hits =
      registry.GetCounter("serve.cache.hits")->value();
  const uint64_t total_misses =
      registry.GetCounter("serve.cache.misses")->value();

  const uint64_t lookups = total_hits + total_misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(total_hits) /
                         static_cast<double>(lookups);
  const uint64_t warm_lookups =
      (total_hits - cold_hits) + (total_misses - cold_misses);
  const double warm_hit_rate =
      warm_lookups == 0
          ? 0.0
          : static_cast<double>(total_hits - cold_hits) /
                static_cast<double>(warm_lookups);

  obs::Histogram* latency =
      registry.GetHistogram("serve.rank_latency_ms",
                            obs::DefaultLatencyBucketsMs());

  // Deadline pass: a fresh engine (cold cache) under an overloaded arrival
  // schedule, with the popularity prior as the last ladder rung so queries
  // that expire mid-flight degrade instead of failing. The no-deadline
  // passes above never shed by construction. The SLO threshold is set to
  // the per-query budget, so the engine's burn rate directly measures how
  // far past its error budget the overload pushes it.
  const double overload = 1.5;
  serve::ServingOptions dl_options;
  dl_options.prior = serve::BuildPopularityPrior(prepared.data.num_types(),
                                                 prepared.split.train);
  dl_options.slo_ms = 4.0 * 1000.0 / std::max(qps_cold * overload, 1.0);
  dl_options.slo_target = 0.99;
  const auto engine_dl =
      serve::ServingEngine::Create(&model, dl_options).value();
  const DeadlineReplay dl =
      ReplayWithDeadlines(*engine_dl, stream, k, qps_cold, overload);
  // Every RESOURCE_EXHAUSTED the replay saw must be a shed the engine
  // counted, and vice versa.
  O2SR_CHECK(engine_dl->shed_count() == dl.shed);
  const obs::SloSnapshot slo = engine_dl->slo().Snapshot();

  report.AddValue("queries", static_cast<double>(num_queries));
  report.AddValue("candidates_per_query",
                  static_cast<double>(candidates_per_query));
  report.AddValue("qps_cold", qps_cold);
  report.AddValue("qps_warm", qps_warm);
  report.AddValue("speedup_warm_over_cold", qps_warm / qps_cold);
  report.AddValue("p50_ms", latency->Quantile(0.50));
  report.AddValue("p95_ms", latency->Quantile(0.95));
  report.AddValue("p99_ms", latency->Quantile(0.99));
  report.AddValue("cache_hit_rate", hit_rate);
  report.AddValue("warm_pass_hit_rate", warm_hit_rate);
  report.AddValue("nodeadline_p99_ms", latency->Quantile(0.99));
  report.AddValue("nodeadline_shed_rate", 0.0);
  report.AddValue("deadline_budget_ms", dl.budget_ms);
  report.AddValue("deadline_qps_served", dl.qps);
  report.AddValue("deadline_p99_ms", dl.p99_ms);
  report.AddValue("deadline_shed_rate", dl.shed_rate);
  report.AddValue("deadline_degraded_rate", dl.degraded_rate);
  report.AddValue("deadline_failed_rate", dl.failed_rate);
  report.AddValue("slo_ms", slo.config.slo_ms);
  report.AddValue("slo_target", slo.config.target);
  report.AddValue("slo_bad_fraction", slo.bad_fraction);
  report.AddValue("slo_burn_rate", slo.burn_rate);
  report.AddValue("slo_breached", slo.breached ? 1.0 : 0.0);
  report.AddValue("slo_window_p99_ms", slo.p99_ms);

  // --- Multi-tenant saturation curve (DESIGN.md §14) -------------------
  // Four cities, each trained on its own drifted world seed, hosted in one
  // registry; {1, 2, 4} closed-loop driver threads round-robin batched
  // requests across them.
  constexpr int kTenants = 4;
  const int batch = serve::ServingEngine::BatchSizeFromEnv(16);
  const uint64_t base_queries =
      scale == bench::Scale::kSmall ? 6000 : 150000;

  serve::TenantRegistry tenant_registry;
  std::vector<TenantWorkload> tenants;
  for (int i = 0; i < kTenants; ++i) {
    sim::SimConfig city = bench::SweepConfig();
    city.seed = 101 + static_cast<uint64_t>(i) * 17;  // four distinct cities
    bench::PreparedData city_data(city, /*split_seed=*/3);

    core::O2SiteRecConfig city_cfg;
    city_cfg.rec.embedding_dim = 16;
    city_cfg.epochs = scale == bench::Scale::kSmall ? 2 : 3;
    city_cfg.seed = 7 + static_cast<uint64_t>(i);
    auto city_model = std::make_unique<core::O2SiteRecRecommender>(city_cfg);
    O2SR_CHECK_OK(city_model->Train(bench::MakeTrainContext(city_data)));

    std::vector<int> city_regions;
    for (int r = 0; r < city_data.data.num_regions(); ++r) {
      if (city_model->CanScoreRegion(r)) city_regions.push_back(r);
    }
    O2SR_CHECK(!city_regions.empty());

    TenantWorkload workload;
    workload.name = "city" + std::to_string(i);
    Rng city_rng(900 + static_cast<uint64_t>(i));
    const int stream_len = batch * 256;
    for (const Query& q :
         MakeQueryStream(stream_len, candidates_per_query, city_regions,
                         city_data.data.num_types(), city_rng)) {
      serve::RankRequest request;
      request.type = q.type;
      request.candidates = q.candidates;
      request.k = k;
      workload.requests.push_back(std::move(request));
    }

    serve::ServingOptions city_options;
    city_options.num_shards = 4;  // one front-end shard per driver thread
    city_options.prior = serve::BuildPopularityPrior(
        city_data.data.num_types(), city_data.split.train);
    O2SR_CHECK_OK(tenant_registry.Register(
        workload.name, std::move(city_model), city_options));
    tenants.push_back(std::move(workload));
  }

  // Short warm pass so every point measures the steady (cached) state.
  (void)RunSaturationPoint(tenant_registry, tenants, 1,
                           static_cast<uint64_t>(batch) * kTenants * 8,
                           batch);

  std::vector<SaturationPoint> curve;
  uint64_t mt_total = 0;
  for (const int threads : {1, 2, 4}) {
    curve.push_back(RunSaturationPoint(
        tenant_registry, tenants, threads,
        base_queries * static_cast<uint64_t>(threads), batch));
    mt_total += curve.back().queries;
    report.AddValue("mt_queries_t" + std::to_string(threads),
                    static_cast<double>(curve.back().queries));
    report.AddValue("mt_qps_t" + std::to_string(threads), curve.back().qps);
    report.AddValue("mt_p99_ms_t" + std::to_string(threads),
                    curve.back().p99_ms);
  }
  const double mt_speedup = curve.back().qps / std::max(curve[0].qps, 1e-9);
  report.AddValue("mt_tenants", static_cast<double>(kTenants));
  report.AddValue("mt_batch", static_cast<double>(batch));
  report.AddValue("mt_total_queries", static_cast<double>(mt_total));
  report.AddValue("mt_speedup_t4", mt_speedup);

  std::printf(
      "\n  queries            %d (x2 passes, %d candidates each, k=%d)\n"
      "  qps cold / warm    %.0f / %.0f (%.1fx)\n"
      "  latency p50/p95/p99  %.3f / %.3f / %.3f ms\n"
      "  cache hit rate     %.3f overall, %.3f warm pass\n"
      "  deadline pass      budget %.3f ms, served p99 %.3f ms, "
      "shed %.3f, degraded %.3f\n"
      "  slo                %.3f ms @ %.2f target: bad %.3f, "
      "burn %.2f, breached %s\n",
      num_queries, candidates_per_query, k, qps_cold, qps_warm,
      qps_warm / qps_cold, latency->Quantile(0.50), latency->Quantile(0.95),
      latency->Quantile(0.99), hit_rate, warm_hit_rate, dl.budget_ms,
      dl.p99_ms, dl.shed_rate, dl.degraded_rate, slo.config.slo_ms,
      slo.config.target, slo.bad_fraction, slo.burn_rate,
      slo.breached ? "yes" : "no");
  std::printf("  multi-tenant       %d tenants, batch %d, %llu queries total\n",
              kTenants, batch,
              static_cast<unsigned long long>(mt_total));
  for (const SaturationPoint& point : curve) {
    std::printf("    threads=%d        qps %.0f, p99 %.3f ms (%llu queries)\n",
                point.threads, point.qps, point.p99_ms,
                static_cast<unsigned long long>(point.queries));
  }
  std::printf("  mt speedup t4/t1   %.2fx\n", mt_speedup);
  return 0;
}
