// Serving throughput: replays a synthetic query stream (mixed store types,
// Zipf-skewed candidate regions) against a ServingEngine and reports QPS,
// latency quantiles and cache hit-rate into BENCH_serving.json.
//
// Two passes over the same stream: the first starts with a cold score
// cache (every pair goes through the model), the second replays warm.
// Because scores are deterministic, the warm pass returns identical
// rankings — the delta is pure throughput, which is the point of the
// cache. The bench asserts nothing; ci.sh checks qps_warm > qps_cold from
// the JSON.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/o2siterec_recommender.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/score_cache.h"

namespace {

using namespace o2sr;

struct Query {
  int type = 0;
  std::vector<int> candidates;
};

// Zipf-skewed sampling over a popularity ranking of the store regions:
// candidate r is drawn with weight 1 / (rank + 1), so a few hot regions
// dominate the stream the way hot city districts dominate real site
// queries.
std::vector<Query> MakeQueryStream(int num_queries, int candidates_per_query,
                                   const std::vector<int>& regions,
                                   int num_types, Rng& rng) {
  std::vector<double> weights(regions.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  std::vector<Query> stream(num_queries);
  for (Query& q : stream) {
    q.type = rng.UniformInt(0, num_types - 1);
    q.candidates.resize(candidates_per_query);
    for (int& c : q.candidates) {
      c = regions[rng.Categorical(weights)];
    }
  }
  return stream;
}

double ReplayQps(const serve::ServingEngine& engine,
                 const std::vector<Query>& stream, int k) {
  const auto start = std::chrono::steady_clock::now();
  for (const Query& q : stream) {
    O2SR_CHECK_OK(engine.RankSites(q.type, q.candidates, k).status());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(stream.size()) / std::max(seconds, 1e-9);
}

}  // namespace

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "serving", "Online serving: cached top-K ranking throughput",
      "serving engine (no paper counterpart)");

  const bench::Scale scale = bench::CurrentScale();
  const int num_queries = scale == bench::Scale::kSmall ? 1500 : 6000;
  const int candidates_per_query = 48;
  const int k = 10;

  sim::SimConfig world = bench::SweepConfig();
  bench::PreparedData prepared(world, /*split_seed=*/3);

  core::O2SiteRecConfig model_cfg;
  model_cfg.rec.embedding_dim = 24;
  model_cfg.epochs = scale == bench::Scale::kSmall ? 4 : 10;
  core::O2SiteRecRecommender model(model_cfg);
  O2SR_CHECK_OK(model.Train(bench::MakeTrainContext(prepared)));

  // Scorable store regions; the Zipf head of the stream concentrates on
  // the first few of them.
  std::vector<int> regions;
  for (int r = 0; r < prepared.data.num_regions(); ++r) {
    if (model.CanScoreRegion(r)) regions.push_back(r);
  }
  O2SR_CHECK(!regions.empty());

  Rng rng(123);
  const std::vector<Query> stream = MakeQueryStream(
      num_queries, candidates_per_query, regions,
      prepared.data.num_types(), rng);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const auto engine = serve::ServingEngine::Create(&model).value();

  const double qps_cold = ReplayQps(*engine, stream, k);
  const uint64_t cold_hits = registry.GetCounter("serve.cache.hits")->value();
  const uint64_t cold_misses =
      registry.GetCounter("serve.cache.misses")->value();

  const double qps_warm = ReplayQps(*engine, stream, k);
  const uint64_t total_hits =
      registry.GetCounter("serve.cache.hits")->value();
  const uint64_t total_misses =
      registry.GetCounter("serve.cache.misses")->value();

  const uint64_t lookups = total_hits + total_misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(total_hits) /
                         static_cast<double>(lookups);
  const uint64_t warm_lookups =
      (total_hits - cold_hits) + (total_misses - cold_misses);
  const double warm_hit_rate =
      warm_lookups == 0
          ? 0.0
          : static_cast<double>(total_hits - cold_hits) /
                static_cast<double>(warm_lookups);

  obs::Histogram* latency =
      registry.GetHistogram("serve.rank_latency_ms",
                            obs::DefaultLatencyBucketsMs());

  report.AddValue("queries", static_cast<double>(num_queries));
  report.AddValue("candidates_per_query",
                  static_cast<double>(candidates_per_query));
  report.AddValue("qps_cold", qps_cold);
  report.AddValue("qps_warm", qps_warm);
  report.AddValue("speedup_warm_over_cold", qps_warm / qps_cold);
  report.AddValue("p50_ms", latency->Quantile(0.50));
  report.AddValue("p95_ms", latency->Quantile(0.95));
  report.AddValue("p99_ms", latency->Quantile(0.99));
  report.AddValue("cache_hit_rate", hit_rate);
  report.AddValue("warm_pass_hit_rate", warm_hit_rate);

  std::printf(
      "\n  queries            %d (x2 passes, %d candidates each, k=%d)\n"
      "  qps cold / warm    %.0f / %.0f (%.1fx)\n"
      "  latency p50/p95/p99  %.3f / %.3f / %.3f ms\n"
      "  cache hit rate     %.3f overall, %.3f warm pass\n",
      num_queries, candidates_per_query, k, qps_cold, qps_warm,
      qps_warm / qps_cold, latency->Quantile(0.50), latency->Quantile(0.95),
      latency->Quantile(0.99), hit_rate, warm_hit_rate);
  return 0;
}
