// Regenerates Fig. 12-13: per-store-type performance of O2-SiteRec compared
// with the two baselines the paper plots (HGT and GraphRec, Adaption
// setting) for the six named types (NDCG@10: per-type NDCG@3 over a single
// type takes only a handful of distinct values): light meal, light salad, fruit, steamed
// buns, juice and fried chicken. Expected shape: O2-SiteRec leads on most
// types and its variation across types is smaller than the baselines'.

#include <cstdio>

#include "baselines/factory.h"
#include "bench_common.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report("fig12_13_store_types",
                            "Per-store-type performance",
                            "Fig. 12-13 (NDCG@10 of six store types)");
  bench::PreparedData prepared(bench::RealDataConfig(), /*split_seed=*/1);
  eval::EvalOptions opts = bench::EvalDefaults();
  opts.min_candidates = 1;  // per-type evaluation handles pool sizes itself

  // The six named types of the paper's figure (catalog ids 0-5).
  const std::vector<int> types = {0, 1, 2, 3, 4, 5};

  // Train each model once; evaluate per type.
  const core::TrainContext ctx = bench::MakeTrainContext(prepared);
  core::O2SiteRecRecommender ours(bench::ModelConfig());
  O2SR_CHECK_OK(ours.Train(ctx));
  const std::vector<double> ours_preds =
      ours.Predict(prepared.split.test).value();

  baselines::BaselineConfig hgt_cfg = bench::BaselineDefaults();
  auto hgt = baselines::MakeBaseline(baselines::BaselineKind::kHgt, hgt_cfg);
  O2SR_CHECK_OK(hgt->Train(ctx));
  const std::vector<double> hgt_preds =
      hgt->Predict(prepared.split.test).value();

  auto graphrec = baselines::MakeBaseline(baselines::BaselineKind::kGraphRec,
                                          bench::BaselineDefaults());
  O2SR_CHECK_OK(graphrec->Train(ctx));
  const std::vector<double> graphrec_preds =
      graphrec->Predict(prepared.split.test).value();

  auto ndcg10_of = [&](const std::vector<double>& preds, int type) {
    const eval::EvalResult r =
        eval::EvaluateType(prepared.split.test, preds, type, opts);
    const auto it = r.ndcg.find(10);
    return it == r.ndcg.end() ? 0.0 : it->second;
  };

  TablePrinter table({"Store type", "O2-SiteRec", "HGT", "GraphRec"});
  std::vector<double> ours_series, hgt_series, grec_series;
  for (int type : types) {
    const double o = ndcg10_of(ours_preds, type);
    const double h = ndcg10_of(hgt_preds, type);
    const double g = ndcg10_of(graphrec_preds, type);
    ours_series.push_back(o);
    hgt_series.push_back(h);
    grec_series.push_back(g);
    const std::string& type_name = prepared.data.type_catalog[type].name;
    report.AddValue("ndcg10/" + type_name + "/o2siterec", o);
    report.AddValue("ndcg10/" + type_name + "/hgt", h);
    report.AddValue("ndcg10/" + type_name + "/graphrec", g);
    table.AddRow({type_name, TablePrinter::Num(o), TablePrinter::Num(h),
                  TablePrinter::Num(g)});
  }
  table.Print(stdout);

  int wins = 0;
  for (size_t i = 0; i < ours_series.size(); ++i) {
    if (ours_series[i] >= hgt_series[i] &&
        ours_series[i] >= grec_series[i]) {
      ++wins;
    }
  }
  std::printf(
      "\nO2-SiteRec best-or-tied on %d/6 types; std across types: ours %.3f "
      "vs HGT %.3f vs GraphRec %.3f\n",
      wins, std::sqrt(SampleVariance(ours_series)),
      std::sqrt(SampleVariance(hgt_series)),
      std::sqrt(SampleVariance(grec_series)));
  std::printf("Shape check: leads on most types -> %s\n",
              wins >= 4 ? "REPRODUCED" : "PARTIAL");
  report.AddValue("wins", wins);
  report.AddValue("reproduced", wins >= 4 ? 1.0 : 0.0);
  return 0;
}
