// Regenerates Table IV: the comparison on the open-data simulation preset
// (sparser, noisier; customer locations re-drawn from distances). Baselines
// run in the Adaption setting only and four metrics are reported, matching
// the paper's space-limited table. Expected shape: O2-SiteRec still wins;
// every method scores lower than on the synthetic-Eleme data of Table III.

#include <cstdio>

#include "baselines/factory.h"
#include "bench_common.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/o2siterec_recommender.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "table04_overall_simulation",
      "Overall performance, open-data simulation preset",
      "Table IV (performance comparison, simulation data)");
  bench::PreparedData prepared(bench::OpenDataConfig(), /*split_seed=*/1);
  eval::EvalOptions opts = bench::EvalDefaults();
  // The sparse preset has smaller candidate pools.
  opts.min_candidates = std::max(20, opts.min_candidates / 2);
  std::printf("dataset: %zu orders (sparse preset)\n",
              prepared.data.orders.size());

  TablePrinter table(
      {"Model", "NDCG@3", "NDCG@5", "Precision@3", "Precision@5"});
  auto add_row = [&](const std::string& name, const eval::EvalResult& r) {
    report.AddResult(name, r);
    table.AddRow({name, TablePrinter::Num(r.ndcg.at(3)),
                  TablePrinter::Num(r.ndcg.at(5)),
                  TablePrinter::Num(r.precision.at(3)),
                  TablePrinter::Num(r.precision.at(5))});
  };

  double best_baseline_ndcg3 = 0.0;
  for (auto kind : baselines::kAllBaselines) {
    baselines::BaselineConfig cfg = bench::BaselineDefaults();
    cfg.setting = baselines::FeatureSetting::kAdaption;
    auto model = baselines::MakeBaseline(kind, cfg);
    const eval::EvalResult r =
        eval::RunOnce(*model, prepared.data, prepared.split, opts).value();
    best_baseline_ndcg3 = std::max(best_baseline_ndcg3, r.ndcg.at(3));
    add_row(baselines::BaselineKindName(kind), r);
  }
  // Sparse-data budget: with ~2x fewer interactions per pair the model
  // converges noticeably slower, and single-transaction mobility edges are
  // mostly reconstruction noise — filter them. (The dense Table III config
  // reaches its plateau at 30 epochs; this preset needs ~80.)
  core::O2SiteRecConfig ours_cfg = bench::ModelConfig();
  ours_cfg.epochs = bench::CurrentScale() != bench::Scale::kSmall ? 80 : 50;
  ours_cfg.mobility_min_transactions = 2;
  core::O2SiteRecRecommender ours(ours_cfg);
  const eval::EvalResult ours_result =
      eval::RunOnce(ours, prepared.data, prepared.split, opts).value();
  add_row("O2-SiteRec", ours_result);
  table.Print(stdout);

  std::printf(
      "\nShape check: O2-SiteRec NDCG@3 %.4f vs best baseline %.4f -> %s\n",
      ours_result.ndcg.at(3), best_baseline_ndcg3,
      ours_result.ndcg.at(3) > best_baseline_ndcg3 ? "REPRODUCED"
                                                   : "MISMATCH");
  report.AddValue("best_baseline_ndcg3", best_baseline_ndcg3);
  report.AddValue("reproduced",
                  ours_result.ndcg.at(3) > best_baseline_ndcg3 ? 1.0 : 0.0);
  return 0;
}
