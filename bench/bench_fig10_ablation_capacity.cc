// Regenerates Fig. 10: the ablation of courier capacity and customer
// preferences. Compares the full O2-SiteRec against "w/o Co" (no courier
// capacity model, fixed delivery scope) and "w/o CoCu" (additionally drops
// the S-U and U-A customer edges). Expected shape: Full > w/o Co > w/o
// CoCu, with a large drop when customer preferences disappear.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/o2siterec.h"

int main() {
  using namespace o2sr;
  bench::BenchReport report(
      "fig10_ablation_capacity",
      "Ablation: courier capacity and customer preferences",
      "Fig. 10 (O2-SiteRec vs w/o Co vs w/o CoCu)");
  bench::PreparedData prepared(bench::RealDataConfig(), /*split_seed=*/1);
  const eval::EvalOptions opts = bench::EvalDefaults();

  TablePrinter table({"Variant", "NDCG@3", "NDCG@5", "NDCG@10",
                      "Precision@3", "Precision@5", "Precision@10", "RMSE"});
  double full_ndcg3 = 0.0, no_co_ndcg3 = 0.0, no_cocu_ndcg3 = 0.0;
  for (auto variant : {core::O2SiteRecVariant::kFull,
                       core::O2SiteRecVariant::kNoCapacity,
                       core::O2SiteRecVariant::kNoCapacityNoCustomer}) {
    core::O2SiteRecConfig cfg = bench::ModelConfig();
    cfg.variant = variant;
    const int seeds =
        bench::CurrentScale() != bench::Scale::kSmall ? 2 : 1;
    report.set_seed_count(seeds);
    const eval::EvalResult r =
        bench::RunVariantAveraged(prepared, cfg, seeds, opts);
    report.AddResult(core::VariantName(variant), r);
    std::vector<std::string> row = {core::VariantName(variant)};
    for (auto& c : bench::MetricCells(r)) row.push_back(c);
    table.AddRow(row);
    if (variant == core::O2SiteRecVariant::kFull) full_ndcg3 = r.ndcg.at(3);
    if (variant == core::O2SiteRecVariant::kNoCapacity) {
      no_co_ndcg3 = r.ndcg.at(3);
    }
    if (variant == core::O2SiteRecVariant::kNoCapacityNoCustomer) {
      no_cocu_ndcg3 = r.ndcg.at(3);
    }
  }
  table.Print(stdout);

  std::printf(
      "\nShape check: Full (%.4f) > w/o Co (%.4f) > w/o CoCu (%.4f) -> %s\n",
      full_ndcg3, no_co_ndcg3, no_cocu_ndcg3,
      (full_ndcg3 > no_co_ndcg3 && no_co_ndcg3 > no_cocu_ndcg3)
          ? "REPRODUCED"
          : "PARTIAL (ordering noisy at this scale)");
  report.AddValue(
      "reproduced",
      (full_ndcg3 > no_co_ndcg3 && no_co_ndcg3 > no_cocu_ndcg3) ? 1.0 : 0.0);
  return 0;
}
