# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/math_util_test[1]_include.cmake")
include("/root/repo/build/tests/table_printer_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/tape_test[1]_include.cmake")
include("/root/repo/build/tests/gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/graphs_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_model_test[1]_include.cmake")
include("/root/repo/build/tests/o2siterec_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/hetero_model_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/tape_property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/site_recommendation_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/eval_adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
