file(REMOVE_RECURSE
  "CMakeFiles/o2siterec_test.dir/o2siterec_test.cc.o"
  "CMakeFiles/o2siterec_test.dir/o2siterec_test.cc.o.d"
  "o2siterec_test"
  "o2siterec_test.pdb"
  "o2siterec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2siterec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
