# Empty compiler generated dependencies file for o2siterec_test.
# This may be replaced when dependencies are built.
