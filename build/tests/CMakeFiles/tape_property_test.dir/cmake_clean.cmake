file(REMOVE_RECURSE
  "CMakeFiles/tape_property_test.dir/tape_property_test.cc.o"
  "CMakeFiles/tape_property_test.dir/tape_property_test.cc.o.d"
  "tape_property_test"
  "tape_property_test.pdb"
  "tape_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
