# Empty compiler generated dependencies file for tape_property_test.
# This may be replaced when dependencies are built.
