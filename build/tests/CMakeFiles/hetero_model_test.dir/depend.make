# Empty dependencies file for hetero_model_test.
# This may be replaced when dependencies are built.
