file(REMOVE_RECURSE
  "CMakeFiles/hetero_model_test.dir/hetero_model_test.cc.o"
  "CMakeFiles/hetero_model_test.dir/hetero_model_test.cc.o.d"
  "hetero_model_test"
  "hetero_model_test.pdb"
  "hetero_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
