file(REMOVE_RECURSE
  "CMakeFiles/eval_adaptive_test.dir/eval_adaptive_test.cc.o"
  "CMakeFiles/eval_adaptive_test.dir/eval_adaptive_test.cc.o.d"
  "eval_adaptive_test"
  "eval_adaptive_test.pdb"
  "eval_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
