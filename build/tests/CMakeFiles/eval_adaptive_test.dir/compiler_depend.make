# Empty compiler generated dependencies file for eval_adaptive_test.
# This may be replaced when dependencies are built.
