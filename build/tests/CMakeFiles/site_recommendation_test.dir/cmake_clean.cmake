file(REMOVE_RECURSE
  "CMakeFiles/site_recommendation_test.dir/site_recommendation_test.cc.o"
  "CMakeFiles/site_recommendation_test.dir/site_recommendation_test.cc.o.d"
  "site_recommendation_test"
  "site_recommendation_test.pdb"
  "site_recommendation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_recommendation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
