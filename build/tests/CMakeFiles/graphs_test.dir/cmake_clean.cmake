file(REMOVE_RECURSE
  "CMakeFiles/graphs_test.dir/graphs_test.cc.o"
  "CMakeFiles/graphs_test.dir/graphs_test.cc.o.d"
  "graphs_test"
  "graphs_test.pdb"
  "graphs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
