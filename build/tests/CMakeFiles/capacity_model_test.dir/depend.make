# Empty dependencies file for capacity_model_test.
# This may be replaced when dependencies are built.
