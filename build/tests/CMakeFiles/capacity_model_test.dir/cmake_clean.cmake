file(REMOVE_RECURSE
  "CMakeFiles/capacity_model_test.dir/capacity_model_test.cc.o"
  "CMakeFiles/capacity_model_test.dir/capacity_model_test.cc.o.d"
  "capacity_model_test"
  "capacity_model_test.pdb"
  "capacity_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
