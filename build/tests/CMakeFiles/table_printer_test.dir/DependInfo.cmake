
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/table_printer_test.cc" "tests/CMakeFiles/table_printer_test.dir/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/table_printer_test.dir/table_printer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/o2sr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/o2sr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/o2sr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graphs/CMakeFiles/o2sr_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/o2sr_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/o2sr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2sr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/o2sr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/o2sr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
