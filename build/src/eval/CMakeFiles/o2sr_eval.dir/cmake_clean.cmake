file(REMOVE_RECURSE
  "CMakeFiles/o2sr_eval.dir/experiment.cc.o"
  "CMakeFiles/o2sr_eval.dir/experiment.cc.o.d"
  "CMakeFiles/o2sr_eval.dir/metrics.cc.o"
  "CMakeFiles/o2sr_eval.dir/metrics.cc.o.d"
  "libo2sr_eval.a"
  "libo2sr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
