# Empty compiler generated dependencies file for o2sr_eval.
# This may be replaced when dependencies are built.
