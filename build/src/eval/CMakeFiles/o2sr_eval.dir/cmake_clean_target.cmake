file(REMOVE_RECURSE
  "libo2sr_eval.a"
)
