file(REMOVE_RECURSE
  "CMakeFiles/o2sr_baselines.dir/baseline_common.cc.o"
  "CMakeFiles/o2sr_baselines.dir/baseline_common.cc.o.d"
  "CMakeFiles/o2sr_baselines.dir/factory.cc.o"
  "CMakeFiles/o2sr_baselines.dir/factory.cc.o.d"
  "CMakeFiles/o2sr_baselines.dir/graph_baselines.cc.o"
  "CMakeFiles/o2sr_baselines.dir/graph_baselines.cc.o.d"
  "CMakeFiles/o2sr_baselines.dir/hetero_baselines.cc.o"
  "CMakeFiles/o2sr_baselines.dir/hetero_baselines.cc.o.d"
  "CMakeFiles/o2sr_baselines.dir/mf_baselines.cc.o"
  "CMakeFiles/o2sr_baselines.dir/mf_baselines.cc.o.d"
  "libo2sr_baselines.a"
  "libo2sr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
