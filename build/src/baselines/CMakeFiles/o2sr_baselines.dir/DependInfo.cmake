
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_common.cc" "src/baselines/CMakeFiles/o2sr_baselines.dir/baseline_common.cc.o" "gcc" "src/baselines/CMakeFiles/o2sr_baselines.dir/baseline_common.cc.o.d"
  "/root/repo/src/baselines/factory.cc" "src/baselines/CMakeFiles/o2sr_baselines.dir/factory.cc.o" "gcc" "src/baselines/CMakeFiles/o2sr_baselines.dir/factory.cc.o.d"
  "/root/repo/src/baselines/graph_baselines.cc" "src/baselines/CMakeFiles/o2sr_baselines.dir/graph_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/o2sr_baselines.dir/graph_baselines.cc.o.d"
  "/root/repo/src/baselines/hetero_baselines.cc" "src/baselines/CMakeFiles/o2sr_baselines.dir/hetero_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/o2sr_baselines.dir/hetero_baselines.cc.o.d"
  "/root/repo/src/baselines/mf_baselines.cc" "src/baselines/CMakeFiles/o2sr_baselines.dir/mf_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/o2sr_baselines.dir/mf_baselines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/o2sr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/o2sr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/o2sr_features.dir/DependInfo.cmake"
  "/root/repo/build/src/graphs/CMakeFiles/o2sr_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/o2sr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/o2sr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2sr_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
