file(REMOVE_RECURSE
  "libo2sr_baselines.a"
)
