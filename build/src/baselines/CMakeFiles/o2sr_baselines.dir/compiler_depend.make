# Empty compiler generated dependencies file for o2sr_baselines.
# This may be replaced when dependencies are built.
