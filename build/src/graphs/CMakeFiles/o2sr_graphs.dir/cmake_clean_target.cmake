file(REMOVE_RECURSE
  "libo2sr_graphs.a"
)
