file(REMOVE_RECURSE
  "CMakeFiles/o2sr_graphs.dir/geo_graph.cc.o"
  "CMakeFiles/o2sr_graphs.dir/geo_graph.cc.o.d"
  "CMakeFiles/o2sr_graphs.dir/hetero_graph.cc.o"
  "CMakeFiles/o2sr_graphs.dir/hetero_graph.cc.o.d"
  "CMakeFiles/o2sr_graphs.dir/mobility_graph.cc.o"
  "CMakeFiles/o2sr_graphs.dir/mobility_graph.cc.o.d"
  "libo2sr_graphs.a"
  "libo2sr_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
