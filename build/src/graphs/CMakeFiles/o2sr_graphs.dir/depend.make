# Empty dependencies file for o2sr_graphs.
# This may be replaced when dependencies are built.
