file(REMOVE_RECURSE
  "CMakeFiles/o2sr_core.dir/courier_capacity_model.cc.o"
  "CMakeFiles/o2sr_core.dir/courier_capacity_model.cc.o.d"
  "CMakeFiles/o2sr_core.dir/hetero_rec_model.cc.o"
  "CMakeFiles/o2sr_core.dir/hetero_rec_model.cc.o.d"
  "CMakeFiles/o2sr_core.dir/o2siterec.cc.o"
  "CMakeFiles/o2sr_core.dir/o2siterec.cc.o.d"
  "CMakeFiles/o2sr_core.dir/site_recommendation.cc.o"
  "CMakeFiles/o2sr_core.dir/site_recommendation.cc.o.d"
  "libo2sr_core.a"
  "libo2sr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
