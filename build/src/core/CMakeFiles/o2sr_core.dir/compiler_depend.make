# Empty compiler generated dependencies file for o2sr_core.
# This may be replaced when dependencies are built.
