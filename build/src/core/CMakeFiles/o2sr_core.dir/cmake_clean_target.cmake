file(REMOVE_RECURSE
  "libo2sr_core.a"
)
