file(REMOVE_RECURSE
  "libo2sr_nn.a"
)
