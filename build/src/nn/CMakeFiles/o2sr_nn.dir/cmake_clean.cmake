file(REMOVE_RECURSE
  "CMakeFiles/o2sr_nn.dir/layers.cc.o"
  "CMakeFiles/o2sr_nn.dir/layers.cc.o.d"
  "CMakeFiles/o2sr_nn.dir/parameter.cc.o"
  "CMakeFiles/o2sr_nn.dir/parameter.cc.o.d"
  "CMakeFiles/o2sr_nn.dir/tape.cc.o"
  "CMakeFiles/o2sr_nn.dir/tape.cc.o.d"
  "CMakeFiles/o2sr_nn.dir/tensor.cc.o"
  "CMakeFiles/o2sr_nn.dir/tensor.cc.o.d"
  "libo2sr_nn.a"
  "libo2sr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
