# Empty dependencies file for o2sr_nn.
# This may be replaced when dependencies are built.
