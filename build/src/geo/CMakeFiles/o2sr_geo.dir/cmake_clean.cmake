file(REMOVE_RECURSE
  "CMakeFiles/o2sr_geo.dir/geometry.cc.o"
  "CMakeFiles/o2sr_geo.dir/geometry.cc.o.d"
  "CMakeFiles/o2sr_geo.dir/grid.cc.o"
  "CMakeFiles/o2sr_geo.dir/grid.cc.o.d"
  "CMakeFiles/o2sr_geo.dir/poi.cc.o"
  "CMakeFiles/o2sr_geo.dir/poi.cc.o.d"
  "CMakeFiles/o2sr_geo.dir/road_network.cc.o"
  "CMakeFiles/o2sr_geo.dir/road_network.cc.o.d"
  "libo2sr_geo.a"
  "libo2sr_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
