file(REMOVE_RECURSE
  "libo2sr_geo.a"
)
