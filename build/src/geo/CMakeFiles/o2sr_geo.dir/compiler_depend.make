# Empty compiler generated dependencies file for o2sr_geo.
# This may be replaced when dependencies are built.
