
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/city.cc" "src/sim/CMakeFiles/o2sr_sim.dir/city.cc.o" "gcc" "src/sim/CMakeFiles/o2sr_sim.dir/city.cc.o.d"
  "/root/repo/src/sim/dataset.cc" "src/sim/CMakeFiles/o2sr_sim.dir/dataset.cc.o" "gcc" "src/sim/CMakeFiles/o2sr_sim.dir/dataset.cc.o.d"
  "/root/repo/src/sim/io.cc" "src/sim/CMakeFiles/o2sr_sim.dir/io.cc.o" "gcc" "src/sim/CMakeFiles/o2sr_sim.dir/io.cc.o.d"
  "/root/repo/src/sim/period.cc" "src/sim/CMakeFiles/o2sr_sim.dir/period.cc.o" "gcc" "src/sim/CMakeFiles/o2sr_sim.dir/period.cc.o.d"
  "/root/repo/src/sim/store_types.cc" "src/sim/CMakeFiles/o2sr_sim.dir/store_types.cc.o" "gcc" "src/sim/CMakeFiles/o2sr_sim.dir/store_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/o2sr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2sr_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
