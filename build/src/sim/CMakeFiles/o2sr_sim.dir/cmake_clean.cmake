file(REMOVE_RECURSE
  "CMakeFiles/o2sr_sim.dir/city.cc.o"
  "CMakeFiles/o2sr_sim.dir/city.cc.o.d"
  "CMakeFiles/o2sr_sim.dir/dataset.cc.o"
  "CMakeFiles/o2sr_sim.dir/dataset.cc.o.d"
  "CMakeFiles/o2sr_sim.dir/io.cc.o"
  "CMakeFiles/o2sr_sim.dir/io.cc.o.d"
  "CMakeFiles/o2sr_sim.dir/period.cc.o"
  "CMakeFiles/o2sr_sim.dir/period.cc.o.d"
  "CMakeFiles/o2sr_sim.dir/store_types.cc.o"
  "CMakeFiles/o2sr_sim.dir/store_types.cc.o.d"
  "libo2sr_sim.a"
  "libo2sr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
