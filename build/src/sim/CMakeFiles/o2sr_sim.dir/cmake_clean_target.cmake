file(REMOVE_RECURSE
  "libo2sr_sim.a"
)
