# Empty dependencies file for o2sr_sim.
# This may be replaced when dependencies are built.
