file(REMOVE_RECURSE
  "libo2sr_features.a"
)
