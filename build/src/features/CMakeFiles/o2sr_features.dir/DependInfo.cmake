
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/analysis.cc" "src/features/CMakeFiles/o2sr_features.dir/analysis.cc.o" "gcc" "src/features/CMakeFiles/o2sr_features.dir/analysis.cc.o.d"
  "/root/repo/src/features/order_stats.cc" "src/features/CMakeFiles/o2sr_features.dir/order_stats.cc.o" "gcc" "src/features/CMakeFiles/o2sr_features.dir/order_stats.cc.o.d"
  "/root/repo/src/features/region_features.cc" "src/features/CMakeFiles/o2sr_features.dir/region_features.cc.o" "gcc" "src/features/CMakeFiles/o2sr_features.dir/region_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/o2sr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2sr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/o2sr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/o2sr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
