# Empty compiler generated dependencies file for o2sr_features.
# This may be replaced when dependencies are built.
