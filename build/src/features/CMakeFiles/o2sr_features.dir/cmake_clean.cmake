file(REMOVE_RECURSE
  "CMakeFiles/o2sr_features.dir/analysis.cc.o"
  "CMakeFiles/o2sr_features.dir/analysis.cc.o.d"
  "CMakeFiles/o2sr_features.dir/order_stats.cc.o"
  "CMakeFiles/o2sr_features.dir/order_stats.cc.o.d"
  "CMakeFiles/o2sr_features.dir/region_features.cc.o"
  "CMakeFiles/o2sr_features.dir/region_features.cc.o.d"
  "libo2sr_features.a"
  "libo2sr_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
