# Empty dependencies file for o2sr_common.
# This may be replaced when dependencies are built.
