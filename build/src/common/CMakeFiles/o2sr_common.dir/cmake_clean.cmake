file(REMOVE_RECURSE
  "CMakeFiles/o2sr_common.dir/math_util.cc.o"
  "CMakeFiles/o2sr_common.dir/math_util.cc.o.d"
  "CMakeFiles/o2sr_common.dir/table_printer.cc.o"
  "CMakeFiles/o2sr_common.dir/table_printer.cc.o.d"
  "libo2sr_common.a"
  "libo2sr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
