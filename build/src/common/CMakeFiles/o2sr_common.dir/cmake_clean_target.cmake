file(REMOVE_RECURSE
  "libo2sr_common.a"
)
