# Empty dependencies file for bench_fig01_supply_demand.
# This may be replaced when dependencies are built.
