file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_supply_demand.dir/bench_fig01_supply_demand.cc.o"
  "CMakeFiles/bench_fig01_supply_demand.dir/bench_fig01_supply_demand.cc.o.d"
  "bench_fig01_supply_demand"
  "bench_fig01_supply_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_supply_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
