# Empty dependencies file for bench_table02_preference_correlation.
# This may be replaced when dependencies are built.
