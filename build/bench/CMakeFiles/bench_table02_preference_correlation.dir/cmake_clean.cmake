file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_preference_correlation.dir/bench_table02_preference_correlation.cc.o"
  "CMakeFiles/bench_table02_preference_correlation.dir/bench_table02_preference_correlation.cc.o.d"
  "bench_table02_preference_correlation"
  "bench_table02_preference_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_preference_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
