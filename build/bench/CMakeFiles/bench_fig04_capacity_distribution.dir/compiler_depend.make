# Empty compiler generated dependencies file for bench_fig04_capacity_distribution.
# This may be replaced when dependencies are built.
