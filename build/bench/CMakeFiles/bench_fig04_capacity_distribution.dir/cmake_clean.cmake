file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_capacity_distribution.dir/bench_fig04_capacity_distribution.cc.o"
  "CMakeFiles/bench_fig04_capacity_distribution.dir/bench_fig04_capacity_distribution.cc.o.d"
  "bench_fig04_capacity_distribution"
  "bench_fig04_capacity_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_capacity_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
