file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_beta.dir/bench_fig16_beta.cc.o"
  "CMakeFiles/bench_fig16_beta.dir/bench_fig16_beta.cc.o.d"
  "bench_fig16_beta"
  "bench_fig16_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
