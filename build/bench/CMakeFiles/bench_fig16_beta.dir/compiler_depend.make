# Empty compiler generated dependencies file for bench_fig16_beta.
# This may be replaced when dependencies are built.
