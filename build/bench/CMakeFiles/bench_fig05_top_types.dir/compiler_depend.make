# Empty compiler generated dependencies file for bench_fig05_top_types.
# This may be replaced when dependencies are built.
