file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_top_types.dir/bench_fig05_top_types.cc.o"
  "CMakeFiles/bench_fig05_top_types.dir/bench_fig05_top_types.cc.o.d"
  "bench_fig05_top_types"
  "bench_fig05_top_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_top_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
