# Empty compiler generated dependencies file for bench_table04_overall_simulation.
# This may be replaced when dependencies are built.
