file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_overall_simulation.dir/bench_table04_overall_simulation.cc.o"
  "CMakeFiles/bench_table04_overall_simulation.dir/bench_table04_overall_simulation.cc.o.d"
  "bench_table04_overall_simulation"
  "bench_table04_overall_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_overall_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
