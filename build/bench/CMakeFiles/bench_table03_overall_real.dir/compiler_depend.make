# Empty compiler generated dependencies file for bench_table03_overall_real.
# This may be replaced when dependencies are built.
