# Empty dependencies file for bench_fig03_delivery_scope.
# This may be replaced when dependencies are built.
