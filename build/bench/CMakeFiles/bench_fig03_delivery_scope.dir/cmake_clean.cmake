file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_delivery_scope.dir/bench_fig03_delivery_scope.cc.o"
  "CMakeFiles/bench_fig03_delivery_scope.dir/bench_fig03_delivery_scope.cc.o.d"
  "bench_fig03_delivery_scope"
  "bench_fig03_delivery_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_delivery_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
