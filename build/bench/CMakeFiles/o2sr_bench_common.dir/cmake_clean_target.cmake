file(REMOVE_RECURSE
  "libo2sr_bench_common.a"
)
