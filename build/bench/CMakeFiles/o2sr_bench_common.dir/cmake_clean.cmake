file(REMOVE_RECURSE
  "CMakeFiles/o2sr_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/o2sr_bench_common.dir/bench_common.cc.o.d"
  "libo2sr_bench_common.a"
  "libo2sr_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2sr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
