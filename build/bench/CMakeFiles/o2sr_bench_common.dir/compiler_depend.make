# Empty compiler generated dependencies file for o2sr_bench_common.
# This may be replaced when dependencies are built.
