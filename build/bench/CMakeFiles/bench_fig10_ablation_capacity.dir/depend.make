# Empty dependencies file for bench_fig10_ablation_capacity.
# This may be replaced when dependencies are built.
