file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_store_types.dir/bench_fig12_13_store_types.cc.o"
  "CMakeFiles/bench_fig12_13_store_types.dir/bench_fig12_13_store_types.cc.o.d"
  "bench_fig12_13_store_types"
  "bench_fig12_13_store_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_store_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
