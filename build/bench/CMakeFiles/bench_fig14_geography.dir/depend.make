# Empty dependencies file for bench_fig14_geography.
# This may be replaced when dependencies are built.
