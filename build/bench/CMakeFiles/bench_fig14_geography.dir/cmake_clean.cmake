file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_geography.dir/bench_fig14_geography.cc.o"
  "CMakeFiles/bench_fig14_geography.dir/bench_fig14_geography.cc.o.d"
  "bench_fig14_geography"
  "bench_fig14_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
