# Empty compiler generated dependencies file for bench_fig02_delivery_time_correlation.
# This may be replaced when dependencies are built.
