file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_delivery_time_correlation.dir/bench_fig02_delivery_time_correlation.cc.o"
  "CMakeFiles/bench_fig02_delivery_time_correlation.dir/bench_fig02_delivery_time_correlation.cc.o.d"
  "bench_fig02_delivery_time_correlation"
  "bench_fig02_delivery_time_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_delivery_time_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
