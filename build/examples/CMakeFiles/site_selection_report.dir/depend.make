# Empty dependencies file for site_selection_report.
# This may be replaced when dependencies are built.
