file(REMOVE_RECURSE
  "CMakeFiles/site_selection_report.dir/site_selection_report.cpp.o"
  "CMakeFiles/site_selection_report.dir/site_selection_report.cpp.o.d"
  "site_selection_report"
  "site_selection_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_selection_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
