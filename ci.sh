#!/usr/bin/env bash
# Local CI: the default Release build + test run, then the same suite under
# UBSan (O2SR_SANITIZE=undefined). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== UBSan build + tests ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DO2SR_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "${JOBS}"
ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"

echo "ci.sh: all green"
