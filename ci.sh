#!/usr/bin/env bash
# Local CI: the default Release build + test run, then the same suite under
# UBSan (O2SR_SANITIZE=undefined). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== Bench smoke (small scale, machine-readable output) ==="
# The fastest bench binary at small scale; validates that the BENCH_*.json
# artifact is well-formed and carries the keys the perf trajectory relies
# on (scale, per-stage timings from the trace layer, metric cells/values).
SMOKE_DIR="$(mktemp -d)"
(cd "${SMOKE_DIR}" &&
 O2SR_BENCH_SCALE=small \
 O2SR_TRACE_FILE=trace.json \
 "${OLDPWD}/build/bench/bench_fig01_supply_demand" >/dev/null)
python3 - "${SMOKE_DIR}" <<'EOF'
import json, sys, os
d = sys.argv[1]
bench = json.load(open(os.path.join(d, "BENCH_fig01_supply_demand.json")))
for key in ("bench", "title", "paper_ref", "scale", "seed_count",
            "wall_clock_s", "stages_ms", "cells", "values"):
    assert key in bench, f"BENCH json missing key {key!r}"
assert bench["bench"] == "fig01_supply_demand"
assert bench["scale"] == "small"
assert "bench.fig01_supply_demand" in bench["stages_ms"], bench["stages_ms"]
assert any(s.startswith("sim.") for s in bench["stages_ms"]), bench["stages_ms"]
assert bench["values"], "bench emitted no metric values"
trace = json.load(open(os.path.join(d, "trace.json")))
assert trace["traceEvents"], "trace export is empty"
assert all(e["ph"] == "X" for e in trace["traceEvents"])
print("bench smoke: BENCH json + chrome trace OK "
      f"({len(trace['traceEvents'])} spans)")
EOF
rm -rf "${SMOKE_DIR}"

echo "=== UBSan build + tests ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DO2SR_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "${JOBS}"
ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"

echo "ci.sh: all green"
