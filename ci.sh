#!/usr/bin/env bash
# Local CI: the default Release build + test run, then the same suite under
# UBSan (O2SR_SANITIZE=undefined). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== Bench smoke (small scale, machine-readable output) ==="
# The fastest bench binary at small scale; validates that the BENCH_*.json
# artifact is well-formed and carries the keys the perf trajectory relies
# on (scale, per-stage timings from the trace layer, metric cells/values).
SMOKE_DIR="$(mktemp -d)"
(cd "${SMOKE_DIR}" &&
 O2SR_BENCH_SCALE=small \
 O2SR_TRACE_FILE=trace.json \
 O2SR_PROFILE_FILE=profile.json \
 "${OLDPWD}/build/bench/bench_fig01_supply_demand" >/dev/null)
python3 - "${SMOKE_DIR}" <<'EOF'
import json, sys, os
d = sys.argv[1]
bench = json.load(open(os.path.join(d, "BENCH_fig01_supply_demand.json")))
for key in ("bench", "title", "paper_ref", "scale", "seed_count",
            "threads", "build_type", "sanitizer",
            "wall_clock_s", "stages_ms", "cells", "values"):
    assert key in bench, f"BENCH json missing key {key!r}"
assert bench["bench"] == "fig01_supply_demand"
assert bench["scale"] == "small"
assert "bench.fig01_supply_demand" in bench["stages_ms"], bench["stages_ms"]
assert any(s.startswith("sim.") for s in bench["stages_ms"]), bench["stages_ms"]
assert bench["values"], "bench emitted no metric values"
# Fixed-precision stage times: at most 3 decimals survive the dump.
for stage, ms in bench["stages_ms"].items():
    assert round(ms, 3) == ms, f"stage {stage!r} not 3-decimal: {ms!r}"
# Structural trace validation: every event (span or counter) carries the
# Chrome trace_event keys; with the profiler on, counter events ride along.
trace = json.load(open(os.path.join(d, "trace.json")))
assert trace["traceEvents"], "trace export is empty"
for e in trace["traceEvents"]:
    for key in ("name", "ph", "ts", "tid"):
        assert key in e, f"trace event missing {key!r}: {e}"
    assert e["ph"] in ("X", "C"), e
    if e["ph"] == "X":
        assert "dur" in e, e
    else:
        assert "value" in e.get("args", {}), e
counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
assert counters, "profiler emitted no counter events into the trace"
profile = json.load(open(os.path.join(d, "profile.json")))
assert "regions" in profile and "ops" in profile, profile.keys()
assert profile["regions"], "profiler saw no parallel regions"
print("bench smoke: BENCH json + chrome trace OK "
      f"({len(trace['traceEvents']) - len(counters)} spans, "
      f"{len(counters)} counters)")
EOF
rm -rf "${SMOKE_DIR}"

echo "=== Bench smoke: serial vs 4-thread wall time (Table IV bench) ==="
# Runs the Table IV bench at small scale with 1 and 4 threads, asserts the
# eval metrics are bit-identical (the exec layer's determinism contract),
# and records both wall times into BENCH_table04_overall_simulation.json in
# the repo root so the perf trajectory accumulates thread-scaling data.
PERF_DIR="$(mktemp -d)"
# Keep the committed baseline around: the bench_diff gate below compares
# the fresh report against it before it is overwritten.
BASELINE_TABLE04="${PERF_DIR}/committed_table04.json"
cp BENCH_table04_overall_simulation.json "${BASELINE_TABLE04}"
for t in 1 4; do
  mkdir -p "${PERF_DIR}/t${t}"
  (cd "${PERF_DIR}/t${t}" &&
   O2SR_BENCH_SCALE=small O2SR_THREADS="${t}" \
   O2SR_PROFILE_FILE=profile.json \
   "${OLDPWD}/build/bench/bench_table04_overall_simulation" >/dev/null)
done
python3 - "${PERF_DIR}" "BENCH_table04_overall_simulation.json" <<'EOF'
import json, sys, os
d, out_name = sys.argv[1], sys.argv[2]
serial = json.load(open(os.path.join(d, "t1", out_name)))
threaded = json.load(open(os.path.join(d, "t4", out_name)))
assert serial["threads"] == 1 and threaded["threads"] == 4, (
    serial["threads"], threaded["threads"])
# Determinism contract: identical metric cells at any thread count.
assert serial["cells"] == threaded["cells"], \
    "thread count changed eval metrics"
merged = dict(threaded)
speedup = serial["wall_clock_s"] / max(threaded["wall_clock_s"], 1e-9)
merged["values"] = list(threaded["values"]) + [
    {"label": "wall_clock_s_threads1", "value": serial["wall_clock_s"]},
    {"label": "wall_clock_s_threads4", "value": threaded["wall_clock_s"]},
    {"label": "speedup_threads4", "value": speedup},
]
json.dump(merged, open(out_name, "w"))
# The planned executor's session reuse + coarse grains make 4 threads pay
# off — but only where 4 hardware threads exist; an oversubscribed 1-core
# box measures contention, not the executor.
if (os.cpu_count() or 1) >= 4:
    assert speedup >= 2.5, \
        f"speedup_threads4 {speedup:.2f} below the 2.5 floor on a " \
        f"{os.cpu_count()}-cpu machine"
    scaling = f"speedup {speedup:.2f} >= 2.5"
else:
    scaling = f"speedup {speedup:.2f} (floor not asserted: " \
              f"{os.cpu_count()} cpu)"
print(f"table04 smoke: metrics bit-identical; "
      f"serial {serial['wall_clock_s']:.1f}s vs "
      f"4-thread {threaded['wall_clock_s']:.1f}s; {scaling} -> {out_name}")
EOF

echo "=== Profiler smoke: attribute the thread-scaling gap (Table IV) ==="
# The attribution contract (DESIGN.md §12): every *count* field in the
# profile (regions, chunks, items, op dispatches, bytes) is identical at 1
# and 4 threads — only times may differ — and the 4-thread profile must
# name where the lanes idle, which is the data ROADMAP item 1 needs to
# explain speedup_threads4 ~ 1.0.
python3 - "${PERF_DIR}" <<'EOF'
import json, sys, os
d = sys.argv[1]
p1 = json.load(open(os.path.join(d, "t1", "profile.json")))
p4 = json.load(open(os.path.join(d, "t4", "profile.json")))
assert p1["regions"].keys() == p4["regions"].keys(), (
    set(p1["regions"]) ^ set(p4["regions"]))
for name in p1["regions"]:
    r1, r4 = p1["regions"][name], p4["regions"][name]
    for field in ("regions", "chunks", "items", "min_items", "max_items"):
        assert r1[field] == r4[field], (name, field, r1[field], r4[field])
# Op counts are exact at any thread count, bytes included.
assert p1["ops"] == p4["ops"], set(p1["ops"]) ^ set(p4["ops"])
assert p1["ops"], "table04 recorded no tensor/tape ops"
# The compiled-plan executor's dispatch contract (DESIGN.md §13): every
# kernel region is named (nothing buckets under "(kernel)") and the
# coarse grains cut total chunk count >= 10x below the PR-7 figure of
# 3,161,131 (same bench, same scale, 1 thread).
assert "(kernel)" not in p1["regions"], "unnamed kernel regions in profile"
assert "(kernel)" not in p4["regions"], "unnamed kernel regions in profile"
total_chunks = sum(r["chunks"] for r in p1["regions"].values())
PR7_CHUNKS = 3_161_131
assert total_chunks * 10 <= PR7_CHUNKS, (
    f"total chunk count {total_chunks} not >=10x below the PR-7 "
    f"figure {PR7_CHUNKS}")
# At 4 threads at least one region actually fanned out, and the report
# attributes its efficiency.
dispatched = {n: r for n, r in p4["regions"].items() if r["dispatched"] > 0}
assert dispatched, "no region dispatched at 4 threads"
worst = sorted(dispatched.items(), key=lambda kv: -kv[1]["idle_ms"])[:3]
total_busy = sum(r["busy_ms"] for r in dispatched.values())
total_idle = sum(r["idle_ms"] for r in dispatched.values())
print(f"profiler smoke: {len(p1['regions'])} regions, "
      f"{len(p1['ops'])} ops, counts thread-invariant; "
      f"busy {total_busy:.0f} ms vs idle {total_idle:.0f} ms across "
      f"{len(dispatched)} dispatched regions")
for name, r in worst:
    print(f"  idle hotspot: {name}: eff {r['efficiency']:.2f}, "
          f"idle {r['idle_ms']:.1f} ms over {r['chunks']} chunks "
          f"({r['items']} items)")
EOF

echo "=== bench_diff gate: BENCH regression check ==="
# Self-diff must be clean, an injected quality regression must fail (exit
# 1), a metadata mismatch must refuse (exit 2), and the fresh table04
# report must not regress against the committed baseline (timing fields
# ignored: machine speed is not a regression).
NEW_TABLE04="BENCH_table04_overall_simulation.json"
./build/tools/bench_diff "${NEW_TABLE04}" "${NEW_TABLE04}" >/dev/null
python3 - "${NEW_TABLE04}" "${PERF_DIR}" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
bad = json.loads(json.dumps(report))
for cell in bad["cells"]:
    if "ndcg@3" in cell:
        cell["ndcg@3"] *= 0.7
json.dump(bad, open(sys.argv[2] + "/regressed.json", "w"))
other = json.loads(json.dumps(report))
other["threads"] = 64
json.dump(other, open(sys.argv[2] + "/mismatched.json", "w"))
EOF
if ./build/tools/bench_diff "${NEW_TABLE04}" "${PERF_DIR}/regressed.json" \
     >/dev/null; then
  echo "bench_diff FAILED to flag an injected regression" >&2; exit 1
else
  [ $? -eq 1 ] || { echo "bench_diff: wrong exit for regression" >&2; exit 1; }
fi
if ./build/tools/bench_diff "${NEW_TABLE04}" "${PERF_DIR}/mismatched.json" \
     >/dev/null; then
  echo "bench_diff FAILED to refuse a metadata mismatch" >&2; exit 1
else
  [ $? -eq 2 ] || { echo "bench_diff: wrong exit for mismatch" >&2; exit 1; }
fi
./build/tools/bench_diff --ignore-timings \
  "${BASELINE_TABLE04}" "${NEW_TABLE04}"
echo "bench_diff gate: self-diff clean, injected regression caught," \
     "meta mismatch refused, committed baseline holds"

# Kernel-layer baseline (DESIGN.md §13): a fresh bench_kernels run must
# match the committed BENCH_kernels.json on every non-timing field —
# the zero mismatch counts (scalar/SIMD and planned/eager bit-exactness)
# and the exact fusion/chunk/tape-shape counts that pin the plan
# compiler's decisions. Thread count is pinned so the report meta is
# machine-independent.
mkdir -p "${PERF_DIR}/kernels"
(cd "${PERF_DIR}/kernels" &&
 O2SR_BENCH_SCALE=small O2SR_THREADS=1 \
 "${OLDPWD}/build/bench/bench_kernels" >/dev/null)
./build/tools/bench_diff --ignore-timings \
  BENCH_kernels.json "${PERF_DIR}/kernels/BENCH_kernels.json"
python3 - "${PERF_DIR}/kernels/BENCH_kernels.json" <<'EOF'
import json, sys
vals = {v["label"]: v["value"]
        for v in json.load(open(sys.argv[1]))["values"]}
assert vals["kernel_mismatch_count"] == 0, vals
assert vals["planned_vs_eager_mismatch_count"] == 0, vals
assert vals["unnamed_region_count"] == 0, vals
assert vals["fused_linear_count"] > 0 and vals["fused_scatter_count"] > 0
print(f"kernels gate: bit-exact (0 mismatches), "
      f"{vals['fused_linear_count']:.0f} fused linear + "
      f"{vals['fused_scatter_count']:.0f} fused scatter dispatches hold")
EOF
rm -rf "${PERF_DIR}"

echo "=== Serving smoke: train once, serve from a second process ==="
# The offline-train / online-serve contract (DESIGN.md §9): a model trained
# and exported by one process must serve bit-identical rankings from a
# fresh process that never trained. serve_demo prints scores with %.17g,
# so a plain diff is an exact double comparison.
SERVE_DIR="$(mktemp -d)"
./build/examples/serve_demo train "${SERVE_DIR}/model.snap" \
  > "${SERVE_DIR}/trained.txt"
./build/examples/serve_demo serve "${SERVE_DIR}/model.snap" \
  > "${SERVE_DIR}/served.txt"
diff "${SERVE_DIR}/trained.txt" "${SERVE_DIR}/served.txt"
echo "serving smoke: cross-process rankings bit-identical"

# Serving throughput bench at small scale; the LRU cache must make the
# warm pass measurably faster than the cold pass, and the deadline pass
# must record its p99 + shed-rate next to the no-deadline numbers
# (DESIGN.md §10).
(cd "${SERVE_DIR}" &&
 O2SR_BENCH_SCALE=small "${OLDPWD}/build/bench/bench_serving" >/dev/null)
python3 - "${SERVE_DIR}" <<'EOF'
import json, sys, os
bench = json.load(open(os.path.join(sys.argv[1], "BENCH_serving.json")))
vals = {v["label"]: v["value"] for v in bench["values"]}
for key in ("qps_cold", "qps_warm", "p50_ms", "p95_ms", "p99_ms",
            "cache_hit_rate", "nodeadline_p99_ms", "nodeadline_shed_rate",
            "deadline_budget_ms", "deadline_p99_ms", "deadline_shed_rate",
            "deadline_degraded_rate",
            "mt_tenants", "mt_batch", "mt_total_queries", "mt_speedup_t4",
            "mt_queries_t1", "mt_qps_t1", "mt_p99_ms_t1",
            "mt_queries_t4", "mt_qps_t4", "mt_p99_ms_t4"):
    assert key in vals, f"BENCH_serving.json missing {key!r}"
assert vals["qps_warm"] > vals["qps_cold"], \
    f"warm QPS {vals['qps_warm']} not above cold {vals['qps_cold']}"
assert 0.0 < vals["cache_hit_rate"] <= 1.0, vals["cache_hit_rate"]
assert vals["nodeadline_shed_rate"] == 0.0, vals["nodeadline_shed_rate"]
assert 0.0 <= vals["deadline_shed_rate"] <= 1.0, vals["deadline_shed_rate"]
# The multi-tenant saturation curve (DESIGN.md §14): >= 4 tenants served,
# and the sharded front end must scale where 4 hardware threads exist —
# an oversubscribed box measures contention, not the engine.
assert vals["mt_tenants"] >= 4, vals["mt_tenants"]
if (os.cpu_count() or 1) >= 4:
    assert vals["mt_speedup_t4"] >= 2.5, \
        f"mt_speedup_t4 {vals['mt_speedup_t4']:.2f} below the 2.5 floor " \
        f"on a {os.cpu_count()}-cpu machine"
    scaling = f"mt speedup {vals['mt_speedup_t4']:.2f} >= 2.5"
else:
    scaling = f"mt speedup {vals['mt_speedup_t4']:.2f} (floor not " \
              f"asserted: {os.cpu_count()} cpu)"
print(f"serving bench smoke: cold {vals['qps_cold']:.0f} qps -> "
      f"warm {vals['qps_warm']:.0f} qps, "
      f"hit rate {vals['cache_hit_rate']:.3f}; "
      f"deadline p99 {vals['deadline_p99_ms']:.3f} ms, "
      f"shed rate {vals['deadline_shed_rate']:.3f}; "
      f"{vals['mt_tenants']:.0f} tenants, "
      f"{vals['mt_total_queries']:.0f} mt queries, {scaling}")
EOF

# bench_diff gate on the serving report: the fresh run must self-diff
# clean and refuse a thread-count mismatch, and the *committed* baseline
# (standard scale) must still record the saturation-curve acceptance —
# >= 1M queries across >= 4 tenants. The committed report cannot be
# diffed against the small-scale fresh run: the scale meta mismatch
# makes bench_diff refuse, which is exactly the safety the gate proves.
./build/tools/bench_diff "${SERVE_DIR}/BENCH_serving.json" \
  "${SERVE_DIR}/BENCH_serving.json" >/dev/null
python3 - "${SERVE_DIR}" <<'EOF'
import json, sys, os
report = json.load(open(os.path.join(sys.argv[1], "BENCH_serving.json")))
bad = json.loads(json.dumps(report))
bad["threads"] = 64
json.dump(bad, open(os.path.join(sys.argv[1], "mismatched.json"), "w"))
EOF
if ./build/tools/bench_diff "${SERVE_DIR}/BENCH_serving.json" \
     "${SERVE_DIR}/mismatched.json" >/dev/null; then
  echo "bench_diff FAILED to refuse a serving meta mismatch" >&2; exit 1
else
  [ $? -eq 2 ] || { echo "bench_diff: wrong exit for mismatch" >&2; exit 1; }
fi
python3 - BENCH_serving.json <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
vals = {v["label"]: v["value"] for v in bench["values"]}
assert bench["scale"] == "standard", bench["scale"]
assert vals["mt_tenants"] >= 4, vals["mt_tenants"]
assert vals["mt_total_queries"] >= 1_000_000, vals["mt_total_queries"]
print(f"serving baseline gate: committed standard-scale report holds "
      f"{vals['mt_total_queries']:.0f} queries over "
      f"{vals['mt_tenants']:.0f} tenants")
EOF

echo "=== Chaos smoke: serve_demo under an injected fault recipe ==="
# The resilience contract (DESIGN.md §10) end to end: snapshot-read bit
# flips, a 5 ms scorer stall and a 2% scorer error rate. The run must exit
# 0 with zero wrong-epoch / wrong-score responses, quarantine the corrupted
# snapshot while the original model keeps serving, promote a pristine one,
# and serve degraded tiers instead of failing.
O2SR_FAULTS="seed=7,snapshot.read=bitflip:0.01,score=delay:5ms,score=error:0.02" \
  ./build/examples/serve_demo chaos "${SERVE_DIR}/model.snap" \
  | tee "${SERVE_DIR}/chaos.txt"
grep -q "wrong_epoch=0 " "${SERVE_DIR}/chaos.txt"
grep -q "wrong_score=0 " "${SERVE_DIR}/chaos.txt"
grep -q "quarantined=1 " "${SERVE_DIR}/chaos.txt"
python3 - "${SERVE_DIR}/chaos.txt" <<'EOF'
import re, sys
summary = [l for l in open(sys.argv[1]) if l.startswith("chaos:")][-1]
fields = dict(kv.split("=") for kv in summary.split()[1:])
assert int(fields["stale"]) + int(fields["prior"]) > 0, \
    f"no degraded-tier responses under faults: {summary}"
assert int(fields["failed"]) == 0, summary
print(f"chaos smoke: {summary.strip()}")
EOF

echo "=== Tenants smoke: multi-threaded multi-tenant swap storm ==="
# The multi-tenant concurrency drill (DESIGN.md §14): four driver threads
# round-robin batched requests across four tenants while one tenant is
# hot-swapped six times. Exit 0 asserts zero failed responses, every swap
# promoted, bystander tenants untouched and per-shard counters summing to
# the engine globals; the greps pin the summary fields so a silently
# weakened drill cannot pass. The chaos recipe is latency-only (a scorer
# stall on every call): it widens every race window the drill races
# through without making the exact-count asserts nondeterministic the
# way error/bitflip recipes would.
O2SR_SERVE_BATCH=8 \
  O2SR_FAULTS="seed=11,score=delay:200us" \
  ./build/examples/serve_demo tenants "${SERVE_DIR}/model.snap" \
  | tee "${SERVE_DIR}/tenants.txt"
grep -q "tenants=4 " "${SERVE_DIR}/tenants.txt"
grep -q "failures=0 " "${SERVE_DIR}/tenants.txt"
grep -q "swaps_promoted=6 " "${SERVE_DIR}/tenants.txt"
grep -q "victim_epoch=7 " "${SERVE_DIR}/tenants.txt"
grep -q "bystanders_clean=1 " "${SERVE_DIR}/tenants.txt"
grep -q "shard_sums_ok=1 " "${SERVE_DIR}/tenants.txt"
rm -rf "${SERVE_DIR}"

echo "=== Continual smoke: crash-resumable pipeline under chaos ==="
# The continual-retraining contract (DESIGN.md §11) end to end: the
# supervised TRAIN->EXPORT->CANARY->SWAP->SERVE->DRIFT->RETRAIN loop must
# complete every refresh cycle with no manual intervention while journal,
# checkpoint and snapshot writes fail transiently and snapshot reads flip
# bits — the retry/backoff supervisor and the engine's fallback ladder ride
# it out. Exit status 0 is the assertion that all cycles completed.
PIPE_DIR="$(mktemp -d)"
O2SR_FAULTS="seed=7,journal.write=error:0.3,checkpoint.write=error:0.2,checkpoint.read=error:0.2,snapshot.read=bitflip:0.15,serialize.write=error:0.1,score=error:0.05" \
  ./build/examples/continual_demo "${PIPE_DIR}/state" \
  | tee "${PIPE_DIR}/continual.txt"
grep -q "^continual: cycles=3 " "${PIPE_DIR}/continual.txt"
grep -q "health=SERVING" "${PIPE_DIR}/continual.txt"
test -s "${PIPE_DIR}/state/pipeline_events.jsonl"
python3 - "${PIPE_DIR}/state/pipeline_events.jsonl" <<'EOF'
import json, sys
events = [json.loads(l) for l in open(sys.argv[1])]
kinds = {e["event"] for e in events}
assert "transition" in kinds, kinds
assert any(e["event"] == "serve" for e in events), kinds
print(f"continual smoke: {len(events)} events, kinds {sorted(kinds)}")
EOF
rm -rf "${PIPE_DIR}"

echo "=== Bench smoke: staleness cost under drift ==="
# bench_drift trains a stale epoch-0 model and a warm-started refresh per
# drift epoch; the refreshed model must not rank worse than the stale one
# (that gap is the pipeline's reason to exist), and BENCH_drift.json must
# carry the per-epoch series + refresh recovery times.
DRIFT_DIR="$(mktemp -d)"
(cd "${DRIFT_DIR}" &&
 O2SR_BENCH_SCALE=small "${OLDPWD}/build/bench/bench_drift" >/dev/null)
python3 - "${DRIFT_DIR}" <<'EOF'
import json, sys, os
bench = json.load(open(os.path.join(sys.argv[1], "BENCH_drift.json")))
vals = {v["label"]: v["value"] for v in bench["values"]}
for key in ("stale_mean_ndcg3", "refreshed_mean_ndcg3",
            "staleness_gap_ndcg3", "epoch1_stale_ndcg3",
            "epoch1_refreshed_ndcg3", "epoch1_recovery_s"):
    assert key in vals, f"BENCH_drift.json missing {key!r}"
assert vals["refreshed_mean_ndcg3"] >= vals["stale_mean_ndcg3"], (
    f"refreshed NDCG@3 {vals['refreshed_mean_ndcg3']} worse than stale "
    f"{vals['stale_mean_ndcg3']}")
assert vals["epoch1_recovery_s"] > 0.0, vals["epoch1_recovery_s"]
assert bench["cells"], "bench emitted no per-epoch eval cells"
print(f"drift bench smoke: stale {vals['stale_mean_ndcg3']:.4f} -> "
      f"refreshed {vals['refreshed_mean_ndcg3']:.4f} "
      f"(gap {vals['staleness_gap_ndcg3']:+.4f})")
EOF
rm -rf "${DRIFT_DIR}"

echo "=== Scale smoke: out-of-core ingest, kill-resume, chaos, corruption ==="
# The out-of-core dataset contract (DESIGN.md §15) end to end. One clean
# ingest/read pair establishes the reference aggregate fingerprint; every
# abuse below — ingestion restarted at every journal boundary, shard and
# manifest writes torn by an injected fault recipe, a raw on-disk byte
# flip — must converge to the byte-identical fingerprint, because corrupt
# shards are detected by checksum, quarantined, and regenerated from the
# seeded simulator under the journal's verification.
SCALE_DIR="$(mktemp -d)"
./build/examples/scale_demo ingest "${SCALE_DIR}/clean" >/dev/null
./build/examples/scale_demo read "${SCALE_DIR}/clean" \
  | tee "${SCALE_DIR}/clean.txt"
REF_FNV="$(grep -o 'agg_fnv=[0-9a-f]*' "${SCALE_DIR}/clean.txt")"
grep -q "quarantined=0 " "${SCALE_DIR}/clean.txt"

# Kill/restart drill: cap each ingestion run at one shard so every journal
# boundary doubles as a crash site; each restart must resume where the
# manifest left off and the final dataset must read back bit-identical to
# the uninterrupted one.
RUNS=0
while :; do
  ./build/examples/scale_demo ingest "${SCALE_DIR}/killed" 1 \
    > "${SCALE_DIR}/killed_run.txt"
  grep -q "stopped_early=1" "${SCALE_DIR}/killed_run.txt" || break
  RUNS=$((RUNS + 1))
  [ "${RUNS}" -le 128 ] || { echo "kill-resume did not converge" >&2; exit 1; }
done
./build/examples/scale_demo read "${SCALE_DIR}/killed" \
  | tee "${SCALE_DIR}/killed.txt"
grep -qF "${REF_FNV}" "${SCALE_DIR}/killed.txt"
grep -q "quarantined=0 " "${SCALE_DIR}/killed.txt"

# Chaos ingest: a quarter of shard writes land torn on disk and a fifth
# of journal updates die outright, killing the run mid-dataset; the
# driver restarts it (fresh fault seed each attempt) until it exits 0.
# The reader must then detect every torn shard, quarantine it and
# regenerate identical rows — same fingerprint, nothing skipped.
ATTEMPTS=0
until O2SR_FAULTS="seed=${ATTEMPTS},dataset.write=trunc:0.25,dataset.manifest=error:0.2" \
        ./build/examples/scale_demo ingest "${SCALE_DIR}/chaos" \
        > "${SCALE_DIR}/chaos_ingest.txt" 2>/dev/null; do
  ATTEMPTS=$((ATTEMPTS + 1))
  [ "${ATTEMPTS}" -le 64 ] || { echo "chaos ingest did not converge" >&2; exit 1; }
done
./build/examples/scale_demo read "${SCALE_DIR}/chaos" \
  | tee "${SCALE_DIR}/chaos.txt"
grep -qF "${REF_FNV}" "${SCALE_DIR}/chaos.txt"
grep -q "skipped=0 " "${SCALE_DIR}/chaos.txt"

# Raw on-disk corruption: flip one byte mid-payload in a shard of the
# clean dataset. The three-checksum format catches it, the reader
# quarantines the file (with a .reason record) and regenerates it; the
# fingerprint must not move.
python3 - "${SCALE_DIR}/clean" <<'EOF'
import glob, os, sys
shard = sorted(glob.glob(os.path.join(sys.argv[1], "shard-*.o2sp")))[3]
with open(shard, "r+b") as f:
    f.seek(os.path.getsize(shard) // 2)
    byte = f.read(1)
    f.seek(-1, 1)
    f.write(bytes([byte[0] ^ 0x40]))
print(f"corrupted one byte of {os.path.basename(shard)}")
EOF
./build/examples/scale_demo read "${SCALE_DIR}/clean" \
  | tee "${SCALE_DIR}/corrupt.txt"
grep -qF "${REF_FNV}" "${SCALE_DIR}/corrupt.txt"
grep -q "quarantined=1 regenerated=1 skipped=0 " "${SCALE_DIR}/corrupt.txt"
test -d "${SCALE_DIR}/clean/.quarantine"
echo "scale smoke: ${RUNS} mid-ingest restarts + chaos recipe" \
     "(${ATTEMPTS} crash-restarts) + byte flip all converge to ${REF_FNV}"

echo "=== bench_scale gate: committed small baseline + paper-scale floor ==="
# A fresh small-scale bench_scale run must match the committed baseline on
# every non-timing field: exact workload shape (stores/orders/shards/
# blocks — drift means the runs ingested different datasets) and peak RSS
# (direction-aware; growth is a regression bench_diff flags even under
# --ignore-timings). Env is pinned so the report meta is
# machine-independent.
mkdir -p "${SCALE_DIR}/bench"
(cd "${SCALE_DIR}/bench" &&
 O2SR_BENCH_SCALE=small O2SR_THREADS=1 O2SR_MEM_BUDGET_MB=2048 \
 O2SR_DATA_DIR=data \
 "${OLDPWD}/build/bench/bench_scale" >/dev/null)
./build/tools/bench_diff --ignore-timings \
  BENCH_scale.small.json "${SCALE_DIR}/bench/BENCH_scale.json"
# The committed paper-scale artifact must hold the §IV-A1 acceptance
# floor: the paper's store count, >= 23M streamed orders, and a peak RSS
# that stayed under the memory budget it declared.
python3 - BENCH_scale.json <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
vals = {v["label"]: v["value"] for v in bench["values"]}
assert bench["bench"] == "scale" and bench["scale"] == "paper", (
    bench["bench"], bench["scale"])
assert vals["stores"] >= 39465, vals["stores"]
assert vals["orders"] >= 23_000_000, vals["orders"]
assert vals["peak_rss_mb"] <= vals["mem_budget_mb"], (
    vals["peak_rss_mb"], vals["mem_budget_mb"])
assert vals["quarantined"] == 0, vals["quarantined"]
print(f"paper-scale gate: {vals['stores']:.0f} stores, "
      f"{vals['orders']:.0f} orders across {vals['shards']:.0f} shards, "
      f"peak RSS {vals['peak_rss_mb']:.0f} MiB within "
      f"{vals['mem_budget_mb']:.0f} MiB budget")
EOF
rm -rf "${SCALE_DIR}"

echo "=== ASan build + pipeline/fault/serving tests ==="
# The crash-resume and fault-injection paths shuffle buffers, snapshots and
# journals across retries; ASan keeps that churn honest.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DO2SR_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}" \
      --target pipeline_test retry_test drift_test fault_injection_test \
               serving_resilience_test serve_test checkpoint_test
(cd build-asan &&
 ./tests/pipeline_test &&
 ./tests/retry_test &&
 ./tests/drift_test &&
 ./tests/fault_injection_test &&
 ./tests/serving_resilience_test &&
 ./tests/serve_test &&
 ./tests/checkpoint_test)

echo "=== TSAN build + exec/trainer/serving tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DO2SR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" \
      --target exec_test parallel_determinism_test fault_tolerance_test \
               optimizer_test score_cache_stress_test \
               serving_resilience_test fault_injection_test \
               serve_batch_test serve_concurrent_test tenant_test
(cd build-tsan &&
 O2SR_THREADS=4 ./tests/exec_test &&
 O2SR_THREADS=4 ./tests/parallel_determinism_test &&
 O2SR_THREADS=4 ./tests/fault_tolerance_test &&
 O2SR_THREADS=4 ./tests/optimizer_test &&
 O2SR_THREADS=4 ./tests/score_cache_stress_test &&
 O2SR_THREADS=4 ./tests/serving_resilience_test &&
 O2SR_THREADS=4 ./tests/fault_injection_test &&
 O2SR_THREADS=4 ./tests/serve_batch_test &&
 O2SR_THREADS=4 ./tests/serve_concurrent_test &&
 O2SR_THREADS=4 ./tests/tenant_test)

echo "=== UBSan build + tests ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DO2SR_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "${JOBS}"
ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"

echo "ci.sh: all green"
