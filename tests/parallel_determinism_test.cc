// The exec layer's central guarantee: every parallel kernel is
// bit-identical to its single-threaded execution at any thread count.
// Each test runs the same computation under pools of 1, 2 and 8 threads
// (via PoolScope, the same mechanism TrainContext::pool uses) and compares
// the results with EXPECT_EQ / EXPECT_DOUBLE_EQ — no tolerances.

#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "exec/thread_pool.h"
#include "features/order_stats.h"
#include "graphs/geo_graph.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "nn/tensor.h"

namespace o2sr {
namespace {

// Runs `fn` under a private pool of each thread count and checks all
// results equal the single-threaded one with `eq(a, b)`.
template <typename Fn, typename Eq>
void ExpectSameAtAllThreadCounts(Fn&& fn, Eq&& eq) {
  exec::ThreadPool serial(1, "exec.det_test");
  exec::ThreadPool two(2, "exec.det_test");
  exec::ThreadPool eight(8, "exec.det_test");
  using Result = decltype(fn());
  std::optional<Result> want;
  {
    exec::PoolScope scope(&serial);
    want.emplace(fn());
  }
  for (exec::ThreadPool* pool : {&two, &eight}) {
    exec::PoolScope scope(pool);
    const Result got = fn();
    eq(*want, got);
  }
}

void ExpectTensorsBitIdentical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
  }
}

TEST(ParallelDeterminismTest, MatMulBitIdentical) {
  Rng rng(7);
  const nn::Tensor a = nn::Tensor::RandomNormal(67, 43, 1.0, rng);
  const nn::Tensor b = nn::Tensor::RandomNormal(43, 29, 1.0, rng);
  ExpectSameAtAllThreadCounts([&] { return nn::MatMul(a, b); },
                              ExpectTensorsBitIdentical);
  ExpectSameAtAllThreadCounts(
      [&] { return nn::MatMulTransposeB(a, nn::Tensor::Full(29, 43, 0.5f)); },
      ExpectTensorsBitIdentical);
  ExpectSameAtAllThreadCounts(
      [&] { return nn::MatMulTransposeA(a, nn::Tensor::Full(67, 29, 0.5f)); },
      ExpectTensorsBitIdentical);
}

TEST(ParallelDeterminismTest, ReductionsBitIdentical) {
  Rng rng(11);
  // Large enough to span multiple element-grain chunks.
  const nn::Tensor t = nn::Tensor::RandomNormal(300, 257, 1.0, rng);
  ExpectSameAtAllThreadCounts([&] { return t.Sum(); },
                              [](double a, double b) { EXPECT_EQ(a, b); });
  ExpectSameAtAllThreadCounts([&] { return t.MeanAbs(); },
                              [](double a, double b) { EXPECT_EQ(a, b); });
}

TEST(ParallelDeterminismTest, ElementwiseBitIdentical) {
  Rng rng(13);
  const nn::Tensor base = nn::Tensor::RandomNormal(211, 173, 1.0, rng);
  const nn::Tensor other = nn::Tensor::RandomNormal(211, 173, 1.0, rng);
  ExpectSameAtAllThreadCounts(
      [&] {
        nn::Tensor t = base;
        t.AddInPlace(other);
        t.ScaleInPlace(0.37f);
        return t;
      },
      ExpectTensorsBitIdentical);
}

sim::SimConfig SmallCity() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3500.0;
  cfg.city_height_m = 3500.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 140;
  cfg.num_couriers = 60;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 51;
  return cfg;
}

const sim::Dataset& Data() {
  static const sim::Dataset* data =
      new sim::Dataset(sim::GenerateDataset(SmallCity()));
  return *data;
}

TEST(ParallelDeterminismTest, GeoGraphBitIdentical) {
  ExpectSameAtAllThreadCounts(
      [&] { return graphs::GeoGraph(Data().city.grid); },
      [](const graphs::GeoGraph& a, const graphs::GeoGraph& b) {
        ASSERT_EQ(a.num_regions(), b.num_regions());
        ASSERT_EQ(a.NumEdges(), b.NumEdges());
        for (int r = 0; r < a.num_regions(); ++r) {
          ASSERT_EQ(a.Neighbors(r), b.Neighbors(r)) << "region " << r;
          ASSERT_EQ(a.Distances(r), b.Distances(r)) << "region " << r;
        }
      });
}

TEST(ParallelDeterminismTest, MobilityGraphBitIdentical) {
  const features::OrderStats stats(Data());
  ExpectSameAtAllThreadCounts(
      [&] { return graphs::MobilityMultiGraph(stats); },
      [](const graphs::MobilityMultiGraph& a,
         const graphs::MobilityMultiGraph& b) {
        ASSERT_EQ(a.TotalEdges(), b.TotalEdges());
        ASSERT_EQ(a.max_delivery_minutes(), b.max_delivery_minutes());
        for (int p = 0; p < sim::kNumPeriods; ++p) {
          const auto& ea = a.EdgesInPeriod(p);
          const auto& eb = b.EdgesInPeriod(p);
          ASSERT_EQ(ea.size(), eb.size()) << "period " << p;
          for (size_t i = 0; i < ea.size(); ++i) {
            ASSERT_EQ(ea[i].src, eb[i].src);
            ASSERT_EQ(ea[i].dst, eb[i].dst);
            ASSERT_EQ(ea[i].delivery_minutes, eb[i].delivery_minutes);
            ASSERT_EQ(ea[i].transactions, eb[i].transactions);
          }
        }
      });
}

TEST(ParallelDeterminismTest, HeteroGraphBitIdentical) {
  const features::OrderStats stats(Data());
  ExpectSameAtAllThreadCounts(
      [&] { return graphs::HeteroMultiGraph(Data(), stats); },
      [](const graphs::HeteroMultiGraph& a,
         const graphs::HeteroMultiGraph& b) {
        ASSERT_EQ(a.store_regions(), b.store_regions());
        ASSERT_EQ(a.customer_regions(), b.customer_regions());
        ExpectTensorsBitIdentical(a.store_features(), b.store_features());
        ExpectTensorsBitIdentical(a.customer_features(),
                                  b.customer_features());
        for (int p = 0; p < sim::kNumPeriods; ++p) {
          const auto& sa = a.Subgraph(p);
          const auto& sb = b.Subgraph(p);
          ASSERT_EQ(sa.su_edges.size(), sb.su_edges.size()) << "period " << p;
          for (size_t i = 0; i < sa.su_edges.size(); ++i) {
            ASSERT_EQ(sa.su_edges[i].s, sb.su_edges[i].s);
            ASSERT_EQ(sa.su_edges[i].u, sb.su_edges[i].u);
            ASSERT_EQ(sa.su_edges[i].distance_norm,
                      sb.su_edges[i].distance_norm);
            ASSERT_EQ(sa.su_edges[i].transactions_norm,
                      sb.su_edges[i].transactions_norm);
          }
          ASSERT_EQ(sa.ua_edges.size(), sb.ua_edges.size()) << "period " << p;
          for (size_t i = 0; i < sa.ua_edges.size(); ++i) {
            ASSERT_EQ(sa.ua_edges[i].u, sb.ua_edges[i].u);
            ASSERT_EQ(sa.ua_edges[i].a, sb.ua_edges[i].a);
            ASSERT_EQ(sa.ua_edges[i].transactions_norm,
                      sb.ua_edges[i].transactions_norm);
          }
        }
      });
}

TEST(ParallelDeterminismTest, EvaluateBitIdentical) {
  const eval::Split split = eval::SplitInteractions(
      Data(), eval::BuildInteractions(Data()), {0.8, /*seed=*/3});
  // Synthetic but deterministic predictions; Evaluate's per-type scoring is
  // what runs in parallel.
  std::vector<double> preds(split.test.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    preds[i] = 0.5 + 0.4 * std::sin(static_cast<double>(i));
  }
  eval::EvalOptions opts;
  opts.min_candidates = 5;
  ExpectSameAtAllThreadCounts(
      [&] { return eval::Evaluate(split.test, preds, opts); },
      [](const eval::EvalResult& a, const eval::EvalResult& b) {
        ASSERT_EQ(a.types_evaluated, b.types_evaluated);
        ASSERT_EQ(a.ndcg.size(), b.ndcg.size());
        for (const auto& [k, v] : a.ndcg) EXPECT_EQ(v, b.ndcg.at(k)) << k;
        for (const auto& [k, v] : a.precision) {
          EXPECT_EQ(v, b.precision.at(k)) << k;
        }
        EXPECT_EQ(a.rmse, b.rmse);
      });
}

}  // namespace
}  // namespace o2sr
