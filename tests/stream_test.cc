#include "sim/stream.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "features/order_stats.h"
#include "features/stream_aggregate.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "sim/world.h"

namespace o2sr::sim {
namespace {

using common::StatusCode;

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

// Small enough that full ingestion plus the kill-at-every-boundary replay
// stays test-sized, but with several blocks and epochs so resume, blocking
// and recovery all have real structure to chew on.
SimConfig TinyConfig() {
  SimConfig config;
  config.city_width_m = 2000.0;
  config.city_height_m = 2000.0;  // 4x4 = 16 regions
  config.num_store_types = 5;
  config.num_stores = 80;
  config.num_couriers = 60;
  config.num_days = 3;
  config.peak_orders_per_region_slot = 2.0;
  config.seed = 77;
  return config;
}

StreamOptions Opts(const std::string& dir, int block_regions = 4) {
  StreamOptions options;
  options.data_dir = dir;
  options.block_regions = block_regions;
  options.mem_budget_mb = 256;
  return options;
}

uint64_t AggregateFingerprint(const SimConfig& config,
                              const std::string& dir,
                              SpillReadReport* report = nullptr) {
  auto reader = DatasetReader::Open(config, dir, SpillReadOptions());
  EXPECT_TRUE(reader.ok()) << reader.status();
  auto stats = features::AggregateSpill(*reader, report);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return features::FingerprintOrderStats(*stats);
}

TEST(StreamGenerateTest, FullRunWritesEveryShardAndJournalsThem) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_full");
  const auto result = StreamGenerate(config, Opts(dir));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_blocks, 4);
  EXPECT_EQ(result->epochs, 3);
  EXPECT_EQ(result->shards_written, 12);
  EXPECT_EQ(result->shards_skipped, 0);
  EXPECT_GT(result->rows, 0u);
  EXPECT_EQ(result->rows, result->total_rows);

  const auto manifest = ReadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->entries.size(), 12u);
  EXPECT_EQ(manifest->config_hash, SimConfigHash(config));
  for (const ManifestEntry& e : manifest->entries) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + e.filename));
  }
}

TEST(StreamGenerateTest, RerunIsANoOp) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_noop");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  const auto again = StreamGenerate(config, Opts(dir));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->shards_written, 0);
  EXPECT_EQ(again->shards_skipped, 12);
}

TEST(StreamGenerateTest, DifferentConfigInSameDirIsRejected) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_mixed");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  SimConfig other = config;
  other.seed = 78;
  EXPECT_EQ(StreamGenerate(other, Opts(dir)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DatasetReader::Open(other, dir, SpillReadOptions())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// The tentpole proof, in the style of pipeline_test: kill ingestion at
// EVERY shard boundary (max_shards_per_run=1 publishes exactly one shard
// per "process lifetime"), restart until done, and require the final
// shards and manifest to be byte-identical to an uninterrupted run — and
// the streamed aggregates to fingerprint identically.
TEST(StreamResumeTest, KillAtEveryShardBoundaryIsBitIdentical) {
  const SimConfig config = TinyConfig();
  const std::string ref_dir = FreshDir("stream_ref");
  const auto ref = StreamGenerate(config, Opts(ref_dir));
  ASSERT_TRUE(ref.ok()) << ref.status();

  const std::string dir = FreshDir("stream_killed");
  StreamOptions one = Opts(dir);
  one.max_shards_per_run = 1;
  int runs = 0;
  while (true) {
    const auto step = StreamGenerate(config, one);
    ASSERT_TRUE(step.ok()) << step.status();
    ++runs;
    ASSERT_LE(runs, 64) << "resume is not converging";
    if (!step->stopped_early && step->shards_written == 0) break;
  }
  EXPECT_EQ(runs, 13);  // 12 one-shard lifetimes + the final no-op pass

  for (int block = 0; block < ref->num_blocks; ++block) {
    for (int epoch = 0; epoch < config.num_days; ++epoch) {
      const std::string name = ShardFileName(block, epoch);
      EXPECT_EQ(ReadFileBytes(dir + "/" + name),
                ReadFileBytes(ref_dir + "/" + name))
          << name;
    }
  }
  EXPECT_EQ(ReadFileBytes(dir + "/" + kManifestFileName),
            ReadFileBytes(ref_dir + "/" + kManifestFileName));
  EXPECT_EQ(AggregateFingerprint(config, dir),
            AggregateFingerprint(config, ref_dir));
}

// A shard published without its journal entry (the crash window between
// WriteShard and WriteManifest) is regenerated to the same bytes.
TEST(StreamResumeTest, UnjournaledShardIsRewrittenIdentically) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_unjournaled");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  const std::string victim = dir + "/" + ShardFileName(1, 2);
  const std::string original = ReadFileBytes(victim);

  // Forge the crash window: shard on disk, manifest missing its entry.
  auto manifest = ReadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  auto& entries = manifest->entries;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [](const ManifestEntry& e) {
                                 return e.info.block == 1 &&
                                        e.info.epoch == 2;
                               }),
                entries.end());
  ASSERT_TRUE(WriteManifest(dir + "/" + kManifestFileName, *manifest).ok());

  const auto resumed = StreamGenerate(config, Opts(dir));
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->shards_written, 1);
  EXPECT_EQ(ReadFileBytes(victim), original);
}

// Blocking is pure I/O batching: different block sizes (and hence memory
// budgets) produce different shard files but IDENTICAL aggregates.
TEST(StreamResumeTest, AggregatesAreInvariantToBlocking) {
  const SimConfig config = TinyConfig();
  const std::string a = FreshDir("stream_blocks_a");
  const std::string b = FreshDir("stream_blocks_b");
  ASSERT_TRUE(StreamGenerate(config, Opts(a, 4)).ok());
  ASSERT_TRUE(StreamGenerate(config, Opts(b, 7)).ok());
  EXPECT_EQ(AggregateFingerprint(config, a), AggregateFingerprint(config, b));
}

TEST(StreamReaderTest, CorruptShardIsQuarantinedAndRegenerated) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_corrupt_regen");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  const uint64_t clean = AggregateFingerprint(config, dir);

  const std::string victim = dir + "/" + ShardFileName(2, 1);
  const std::string original = ReadFileBytes(victim);
  std::string mutated = original;
  mutated[mutated.size() / 2] ^= 0x20;  // one bit, mid-payload
  WriteFileBytes(victim, mutated);

  SpillReadReport report;
  const uint64_t recovered = AggregateFingerprint(config, dir, &report);
  EXPECT_EQ(report.quarantined, 1);
  EXPECT_EQ(report.regenerated, 1);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(recovered, clean);
  // The torn copy is preserved for forensics, the live file healed.
  EXPECT_TRUE(std::filesystem::exists(dir + "/.quarantine/" +
                                      ShardFileName(2, 1)));
  EXPECT_EQ(ReadFileBytes(victim), original);
}

// A shard with flawless checksums from a world with MORE store types: its
// type column would index out of range in this world's aggregation tables.
// The embedded config hash must keep it out — both when the journal is
// intact (manifest-record mismatch) and when the journal is lost and the
// manifest is rebuilt by scanning shards.
TEST(StreamReaderTest, ForeignConfigShardIsNeverConsumed) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_foreign_shard");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  const uint64_t clean = AggregateFingerprint(config, dir);

  SimConfig foreign = TinyConfig();
  foreign.num_store_types = 9;
  foreign.seed = 123;
  const std::string foreign_dir = FreshDir("stream_foreign_src");
  ASSERT_TRUE(StreamGenerate(foreign, Opts(foreign_dir)).ok());
  const std::string victim = ShardFileName(2, 1);
  const std::string planted = ReadFileBytes(foreign_dir + "/" + victim);
  WriteFileBytes(dir + "/" + victim, planted);

  SpillReadReport swapped;
  EXPECT_EQ(AggregateFingerprint(config, dir, &swapped), clean);
  EXPECT_EQ(swapped.quarantined, 1);
  EXPECT_EQ(swapped.regenerated, 1);

  // Journal lost: recovery scans the shards and must refuse to adopt the
  // foreign one even though every one of its checksums passes.
  WriteFileBytes(dir + "/" + victim, planted);
  std::string manifest = ReadFileBytes(dir + "/" + kManifestFileName);
  manifest[manifest.size() / 2] ^= 0x08;
  WriteFileBytes(dir + "/" + kManifestFileName, manifest);
  SpillReadReport recovery;
  EXPECT_EQ(AggregateFingerprint(config, dir, &recovery), clean);
  EXPECT_GE(recovery.regenerated, 1);
}

TEST(StreamReaderTest, StrictPolicyFailsFastOnCorruption) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_corrupt_strict");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  const std::string victim = dir + "/" + ShardFileName(0, 0);
  std::string bytes = ReadFileBytes(victim);
  bytes[bytes.size() - 3] ^= 0x01;  // footer checksum region
  WriteFileBytes(victim, bytes);

  SpillReadOptions strict;
  strict.policy = SpillReadPolicy::kStrict;
  auto reader = DatasetReader::Open(config, dir, strict);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const common::Status s = reader->Stream(
      [](const ShardColumns&, const ShardInfo&) {
        return common::Status::Ok();
      },
      nullptr);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  // Strict mode touches nothing: the corrupt file stays in place.
  EXPECT_TRUE(std::filesystem::exists(victim));
  EXPECT_FALSE(std::filesystem::exists(dir + "/.quarantine"));
}

TEST(StreamReaderTest, SkipPolicyHonorsAndEnforcesTheErrorBudget) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_skip_budget");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  for (const int epoch : {0, 1}) {
    const std::string victim = dir + "/" + ShardFileName(1, epoch);
    std::string bytes = ReadFileBytes(victim);
    bytes.resize(bytes.size() / 3);
    WriteFileBytes(victim, bytes);
  }

  SpillReadOptions skip;
  skip.regenerate = false;
  skip.max_quarantined = 2;
  auto reader = DatasetReader::Open(config, dir, skip);
  ASSERT_TRUE(reader.ok()) << reader.status();
  SpillReadReport report;
  ASSERT_TRUE(reader
                  ->Stream(
                      [](const ShardColumns&, const ShardInfo&) {
                        return common::Status::Ok();
                      },
                      &report)
                  .ok());
  EXPECT_EQ(report.skipped, 2);
  EXPECT_EQ(report.shards_read, 10);

  // One more loss than the budget allows: loud DATA_LOSS, not silence.
  SpillReadOptions tight = skip;
  tight.max_quarantined = 0;
  auto reader2 = DatasetReader::Open(config, dir, tight);
  ASSERT_TRUE(reader2.ok()) << reader2.status();
  EXPECT_EQ(reader2
                ->Stream(
                    [](const ShardColumns&, const ShardInfo&) {
                      return common::Status::Ok();
                    },
                    nullptr)
                .code(),
            StatusCode::kDataLoss);
}

TEST(StreamReaderTest, CorruptManifestIsQuarantinedAndRebuiltFromShards) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_manifest_recovery");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  const uint64_t clean = AggregateFingerprint(config, dir);

  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::string bytes = ReadFileBytes(manifest_path);
  bytes[bytes.size() / 2] ^= 0x04;
  WriteFileBytes(manifest_path, bytes);

  EXPECT_EQ(AggregateFingerprint(config, dir), clean);
  EXPECT_TRUE(std::filesystem::exists(dir + "/.quarantine/" +
                                      std::string(kManifestFileName)));
  // The heal-write left a valid journal behind.
  EXPECT_TRUE(ReadManifest(manifest_path).ok());
}

TEST(StreamReaderTest, GeneratorResumesThroughACorruptManifestToo) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_generate_recovery");
  StreamOptions partial = Opts(dir);
  partial.max_shards_per_run = 5;
  ASSERT_TRUE(StreamGenerate(config, partial).ok());

  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::string bytes = ReadFileBytes(manifest_path);
  bytes.resize(bytes.size() - 7);
  WriteFileBytes(manifest_path, bytes);

  const auto resumed = StreamGenerate(config, Opts(dir));
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_GE(resumed->quarantined, 1);
  // Nothing already on disk was regenerated: the 5 surviving shards were
  // re-adopted from their own self-describing headers.
  EXPECT_EQ(resumed->shards_written, 7);

  const std::string ref_dir = FreshDir("stream_generate_recovery_ref");
  ASSERT_TRUE(StreamGenerate(config, Opts(ref_dir)).ok());
  EXPECT_EQ(AggregateFingerprint(config, dir),
            AggregateFingerprint(config, ref_dir));
}

// Losing the manifest AND changing the requested blocking (as a changed
// memory budget would) must not quarantine the survivors: recovery infers
// the blocking from the shards themselves and keeps them.
TEST(StreamGenerateTest, CorruptManifestRecoveryKeepsSurvivorsUnderNewBlocking) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_recovery_rebudget");
  StreamOptions partial = Opts(dir, 4);
  partial.max_shards_per_run = 5;
  ASSERT_TRUE(StreamGenerate(config, partial).ok());

  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::string bytes = ReadFileBytes(manifest_path);
  bytes.resize(bytes.size() - 7);
  WriteFileBytes(manifest_path, bytes);

  const auto resumed = StreamGenerate(config, Opts(dir, 8));
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->block_regions, 4);   // inferred, not the requested 8
  EXPECT_EQ(resumed->shards_written, 7);  // the 5 survivors were adopted
  EXPECT_FALSE(std::filesystem::exists(dir + "/.quarantine/" +
                                       ShardFileName(0, 0)));

  const std::string ref_dir = FreshDir("stream_recovery_rebudget_ref");
  ASSERT_TRUE(StreamGenerate(config, Opts(ref_dir, 4)).ok());
  EXPECT_EQ(AggregateFingerprint(config, dir),
            AggregateFingerprint(config, ref_dir));
}

// dataset.* fault recipes drive the whole loop end to end: torn writes land
// on disk, the reader detects, quarantines and regenerates, and the final
// aggregates still fingerprint identically to a fault-free world.
TEST(StreamFaultTest, ChaosRecipeConvergesToCleanAggregates) {
  const SimConfig config = TinyConfig();
  const std::string ref_dir = FreshDir("stream_chaos_ref");
  ASSERT_TRUE(StreamGenerate(config, Opts(ref_dir)).ok());
  const uint64_t clean = AggregateFingerprint(config, ref_dir);

  const std::string dir = FreshDir("stream_chaos");
  common::FaultInjector::ResetGlobalForTest(
      "seed=11,dataset.write=trunc:0.3");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());
  common::FaultInjector::ResetGlobalForTest("");

  SpillReadReport report;
  EXPECT_EQ(AggregateFingerprint(config, dir, &report), clean);
  EXPECT_GT(report.quarantined, 0);
  EXPECT_EQ(report.regenerated, report.quarantined);
}

// Streamed aggregates drive graph construction to the same result as
// collecting the rows in RAM first — the aggregate-consuming build path.
TEST(StreamGraphTest, GraphsFromStreamedAggregatesMatchCollectedRows) {
  const SimConfig config = TinyConfig();
  const std::string dir = FreshDir("stream_graphs");
  ASSERT_TRUE(StreamGenerate(config, Opts(dir)).ok());

  auto reader = DatasetReader::Open(config, dir, SpillReadOptions());
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto streamed = features::AggregateSpill(*reader, nullptr);
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  // Reference: collect every row in RAM, then aggregate in one pass.
  features::OrderStats collected(reader->world().num_regions(),
                                 reader->world().num_types());
  auto reader2 = DatasetReader::Open(config, dir, SpillReadOptions());
  ASSERT_TRUE(reader2.ok());
  ASSERT_TRUE(reader2
                  ->Stream(
                      [&collected](const ShardColumns& cols,
                                   const ShardInfo&) {
                        for (size_t i = 0; i < cols.rows(); ++i) {
                          collected.Add(
                              static_cast<int>(PeriodOfSlot(cols.slot[i])),
                              cols.store_region[i], cols.customer_region[i],
                              cols.type[i], cols.delivery_minutes[i],
                              cols.distance_m[i]);
                        }
                        return common::Status::Ok();
                      },
                      nullptr)
                  .ok());
  collected.FinalizeSupplyDemand(reader->world().courier_alloc,
                                 config.num_days);
  EXPECT_EQ(features::FingerprintOrderStats(*streamed),
            features::FingerprintOrderStats(collected));

  // The orders-free WorldDataset plus streamed stats builds real graphs.
  const sim::Dataset world_data = WorldDataset(reader->world());
  const graphs::HeteroMultiGraph hetero(world_data, *streamed);
  const graphs::MobilityMultiGraph mobility(*streamed);
  EXPECT_GT(hetero.num_store_nodes(), 0);
  EXPECT_GT(mobility.TotalEdges(), 0u);
  EXPECT_EQ(hetero.num_types(), world_data.num_types());
}

TEST(StreamSeedTest, ShardSeedsAreDistinctAcrossEpochAndRegion) {
  const uint64_t base = 42;
  std::vector<uint64_t> seen;
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (int region = 0; region < 64; ++region) {
      seen.push_back(ShardSeed(base, epoch, region));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace o2sr::sim
