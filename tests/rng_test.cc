#include "common/rng.h"

#include <vector>

#include <gtest/gtest.h>

namespace o2sr {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000) == b.UniformInt(0, 1000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(4.5);
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(6);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(7);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(RngTest, ForkIsIndependentOfParentSequence) {
  Rng a(9);
  Rng fork = a.Fork();
  const double after_fork = a.Uniform();

  Rng b(9);
  Rng fork_b = b.Fork();
  (void)fork_b;
  // Consuming values from the fork must not change the parent's stream.
  for (int i = 0; i < 10; ++i) fork.Uniform();
  EXPECT_DOUBLE_EQ(after_fork, b.Uniform());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace o2sr
