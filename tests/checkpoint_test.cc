#include "nn/checkpoint.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "nn/parameter.h"
#include "nn/tape.h"
#include "nn/trainer.h"

namespace o2sr::nn {
namespace {

using common::StatusCode;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileRaw(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

// A tiny deterministic least-squares model: pred = dropout(X) * w + b.
// Dropout consumes the epoch RNG, which makes resume correctness depend on
// restoring the RNG stream — exactly what the bit-identity tests probe.
struct TinyModel {
  ParameterStore store;
  Parameter* w;
  Parameter* b;
  Tensor x{Tensor::FromVector(
      4, 3,
      {1.0f, 0.5f, -0.25f, -1.0f, 2.0f, 0.75f, 0.25f, -0.5f, 1.5f, 2.0f,
       1.0f, -1.0f})};
  Tensor target{Tensor::FromVector(4, 1, {1.0f, -0.5f, 2.0f, 0.25f})};
  std::unique_ptr<AdamOptimizer> adam;
  Rng epoch_rng{71};

  explicit TinyModel(uint64_t seed = 11) {
    Rng rng(seed);
    w = store.CreateXavier("w", 3, 1, rng);
    b = store.CreateZeros("b", 1, 1);
    AdamOptimizer::Options opt;
    opt.learning_rate = 5e-2;
    adam = std::make_unique<AdamOptimizer>(&store, opt);
  }

  EpochFn MakeEpochFn() {
    return [this](int /*epoch*/) {
      Tape tape(/*training=*/true);
      Value pred = tape.AddRowBroadcast(
          tape.MatMul(tape.Dropout(tape.Input(x), 0.25, epoch_rng),
                      tape.Param(w)),
          tape.Param(b));
      Value loss = tape.MseLoss(pred, tape.Input(target));
      const double loss_value = tape.value(loss).at(0, 0);
      tape.Backward(loss);
      return loss_value;
    };
  }
};

void ExpectBitIdentical(const ParameterStore& a, const ParameterStore& b) {
  ASSERT_EQ(a.params().size(), b.params().size());
  for (size_t i = 0; i < a.params().size(); ++i) {
    const Tensor& ta = a.params()[i]->value;
    const Tensor& tb = b.params()[i]->value;
    ASSERT_TRUE(ta.SameShape(tb));
    for (int r = 0; r < ta.rows(); ++r) {
      for (int c = 0; c < ta.cols(); ++c) {
        // Exact float equality: resume must replay the identical arithmetic.
        ASSERT_EQ(ta.at(r, c), tb.at(r, c))
            << a.params()[i]->name << " at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(CheckpointTest, RoundTripRestoresEverything) {
  const std::string path = TempPath("roundtrip.ckpt");
  std::remove(path.c_str());
  EXPECT_FALSE(CheckpointExists(path));

  TinyModel saved;
  // Step once so the Adam moments are non-trivial.
  const EpochFn epoch_fn = saved.MakeEpochFn();
  epoch_fn(0);
  saved.adam->Step();

  CheckpointMeta meta;
  meta.epoch = 17;
  meta.learning_rate = 2.5e-2;
  meta.recoveries = 2;
  meta.best_loss = 0.125;
  meta.rng_state = saved.epoch_rng.SaveState();
  ASSERT_TRUE(
      SaveCheckpoint(path, meta, saved.store, saved.adam->SaveState()).ok());
  EXPECT_TRUE(CheckpointExists(path));

  TinyModel loaded(/*seed=*/99);  // different init, fully overwritten
  CheckpointMeta got;
  AdamState adam_state;
  ASSERT_TRUE(LoadCheckpoint(path, &got, &loaded.store, &adam_state).ok());
  loaded.adam->LoadState(adam_state);

  EXPECT_EQ(got.epoch, 17);
  EXPECT_EQ(got.learning_rate, 2.5e-2);
  EXPECT_EQ(got.recoveries, 2);
  EXPECT_EQ(got.best_loss, 0.125);
  EXPECT_EQ(got.rng_state, meta.rng_state);
  EXPECT_EQ(loaded.adam->step_count(), saved.adam->step_count());
  ExpectBitIdentical(saved.store, loaded.store);
}

TEST(CheckpointTest, TruncatedFileIsDataLoss) {
  const std::string path = TempPath("truncated.ckpt");
  TinyModel m;
  ASSERT_TRUE(
      SaveCheckpoint(path, CheckpointMeta(), m.store, m.adam->SaveState())
          .ok());
  const std::string bytes = ReadFile(path);
  // Chop the file at several points, including inside the header.
  for (const size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    WriteFileRaw(path, bytes.substr(0, keep));
    CheckpointMeta meta;
    AdamState adam_state;
    TinyModel fresh;
    EXPECT_EQ(
        LoadCheckpoint(path, &meta, &fresh.store, &adam_state).code(),
        StatusCode::kDataLoss)
        << "keep=" << keep;
  }
}

TEST(CheckpointTest, CorruptedPayloadFailsChecksum) {
  const std::string path = TempPath("corrupt.ckpt");
  TinyModel m;
  ASSERT_TRUE(
      SaveCheckpoint(path, CheckpointMeta(), m.store, m.adam->SaveState())
          .ok());
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-payload
  WriteFileRaw(path, bytes);
  CheckpointMeta meta;
  AdamState adam_state;
  const common::Status st =
      LoadCheckpoint(path, &meta, &m.store, &adam_state);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, BadMagicIsDataLoss) {
  const std::string path = TempPath("badmagic.ckpt");
  WriteFileRaw(path, "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  CheckpointMeta meta;
  AdamState adam_state;
  TinyModel m;
  EXPECT_EQ(LoadCheckpoint(path, &meta, &m.store, &adam_state).code(),
            StatusCode::kDataLoss);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  CheckpointMeta meta;
  AdamState adam_state;
  TinyModel m;
  EXPECT_EQ(LoadCheckpoint(TempPath("never_written.ckpt"), &meta, &m.store,
                           &adam_state)
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(CheckpointExists(TempPath("never_written.ckpt")));
}

TEST(CheckpointTest, MismatchedModelIsFailedPrecondition) {
  const std::string path = TempPath("mismatch.ckpt");
  TinyModel m;
  ASSERT_TRUE(
      SaveCheckpoint(path, CheckpointMeta(), m.store, m.adam->SaveState())
          .ok());
  // A store with a different parameter set must refuse the checkpoint.
  ParameterStore other;
  Rng rng(3);
  other.CreateXavier("w", 5, 2, rng);  // wrong shape
  other.CreateZeros("b", 1, 1);
  CheckpointMeta meta;
  AdamState adam_state;
  const common::Status st = LoadCheckpoint(path, &meta, &other, &adam_state);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, SaveLeavesNoTempFileBehind) {
  const std::string path = TempPath("atomic.ckpt");
  TinyModel m;
  ASSERT_TRUE(
      SaveCheckpoint(path, CheckpointMeta(), m.store, m.adam->SaveState())
          .ok());
  EXPECT_FALSE(CheckpointExists(path + ".tmp"));
}

// The headline guarantee: train 4 epochs, "crash", resume for 6 more — the
// parameters match a single uninterrupted 10-epoch run bit for bit.
TEST(CheckpointTest, ResumeIsBitIdenticalToUninterruptedRun) {
  const std::string path = TempPath("resume.ckpt");
  std::remove(path.c_str());

  GuardrailOptions ckpt_opts;
  ckpt_opts.checkpoint_path = path;
  ckpt_opts.checkpoint_every = 5;

  // Uninterrupted reference: 10 epochs, no checkpointing.
  TinyModel reference;
  ASSERT_TRUE(RunGuardedTraining(&reference.store, reference.adam.get(),
                                 &reference.epoch_rng, 10,
                                 reference.MakeEpochFn())
                  .ok());

  // Interrupted run: 4 epochs (final-epoch checkpoint lands at epoch 4).
  {
    TinyModel first;
    TrainReport report;
    ASSERT_TRUE(RunGuardedTraining(&first.store, first.adam.get(),
                                   &first.epoch_rng, 4, first.MakeEpochFn(),
                                   ckpt_opts, {}, &report)
                    .ok());
    EXPECT_FALSE(report.resumed);
    EXPECT_EQ(report.epochs_run, 4);
  }

  // Fresh process: same model construction, resumes at epoch 4 and
  // finishes the remaining 6.
  TinyModel resumed;
  TrainReport report;
  ASSERT_TRUE(RunGuardedTraining(&resumed.store, resumed.adam.get(),
                                 &resumed.epoch_rng, 10,
                                 resumed.MakeEpochFn(), ckpt_opts, {},
                                 &report)
                  .ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.start_epoch, 4);
  EXPECT_EQ(report.epochs_run, 6);

  ExpectBitIdentical(reference.store, resumed.store);
  std::remove(path.c_str());
}

// Resuming a finished run is a no-op that leaves parameters untouched.
TEST(CheckpointTest, ResumeOfCompletedRunRunsZeroEpochs) {
  const std::string path = TempPath("complete.ckpt");
  std::remove(path.c_str());
  GuardrailOptions ckpt_opts;
  ckpt_opts.checkpoint_path = path;

  TinyModel done;
  ASSERT_TRUE(RunGuardedTraining(&done.store, done.adam.get(),
                                 &done.epoch_rng, 6, done.MakeEpochFn(),
                                 ckpt_opts)
                  .ok());

  TinyModel again;
  TrainReport report;
  ASSERT_TRUE(RunGuardedTraining(&again.store, again.adam.get(),
                                 &again.epoch_rng, 6, again.MakeEpochFn(),
                                 ckpt_opts, {}, &report)
                  .ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.epochs_run, 0);
  ExpectBitIdentical(done.store, again.store);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace o2sr::nn
