// Concurrency proof for the sharded serving front end (DESIGN.md §14):
// N closed-loop driver threads race a snapshot-swap storm, and afterwards
// EVERY recorded response is replayed through a fresh single-threaded
// engine holding the model of the epoch the response reported — the
// replay must be bit-identical (regions and scores). That simultaneously
// proves no torn reads, no cross-epoch mixing inside one response, and
// that a response's reported epoch is the epoch that actually scored it.
// The per-shard counter blocks must also sum exactly to the engine-global
// relaxed atomics. Run under TSAN in CI (ci.sh).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace o2sr::serve {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// score(region, type) = scale * (1 + region + 100 * type), scale living in
// a restorable parameter so every promoted snapshot observably changes the
// scores (and a torn or mixed read observably breaks them).
class ScaledStub : public core::SiteRecommender {
 public:
  explicit ScaledStub(int num_regions, float scale)
      : num_regions_(num_regions) {
    store_.CreateZeros("scaled.scale", 1, 1);
    store_.params()[0]->value.Fill(scale);
  }

  std::string Name() const override { return "ScaledStub"; }
  common::Status Train(const core::TrainContext&) override {
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    std::vector<double> out;
    out.reserve(pairs.size());
    for (const core::Interaction& it : pairs) {
      if (it.type < 0 || it.type >= 10) {
        return common::InvalidArgumentError("scaled stub: unknown type");
      }
      out.push_back(Score(scale(), it.region, it.type));
    }
    return out;
  }
  const nn::ParameterStore* parameter_store() const override {
    return &store_;
  }
  nn::ParameterStore* mutable_parameter_store() override { return &store_; }
  bool CanScoreRegion(int region) const override {
    return region >= 0 && region < num_regions_;
  }

  double scale() const {
    return static_cast<double>(store_.params()[0]->value.at(0, 0));
  }
  static double Score(double scale, int region, int type) {
    return scale * (1.0 + region + 100.0 * type);
  }

 private:
  int num_regions_;
  nn::ParameterStore store_;
};

constexpr uint64_t kConfigHash = 42;

std::string ExportScaled(const std::string& name, float scale) {
  ScaledStub source(10, scale);
  SnapshotMeta meta;
  meta.model_name = "ScaledStub";
  meta.config_hash = kConfigHash;
  meta.num_regions = 10;
  meta.num_types = 10;
  const std::string path = TempPath(name.c_str());
  EXPECT_TRUE(ExportSnapshot(path, meta, source).ok());
  return path;
}

RankRequest Request(int type, std::vector<int> candidates, int k) {
  RankRequest request;
  request.type = type;
  request.candidates = std::move(candidates);
  request.k = k;
  return request;
}

// What one driver thread records per response, enough to replay it.
struct Record {
  int type = 0;
  std::vector<int> candidates;
  int k = 0;
  uint64_t epoch = 0;
  ServeTier tier = ServeTier::kFresh;
  std::vector<RankedSite> sites;
};

// Deterministic per-thread request stream: every region in [0, 10) is
// scorable, so all responses must be fresh-tier.
RankRequest StreamRequest(int thread, int iter) {
  const int type = (thread * 3 + iter) % 10;
  std::vector<int> candidates;
  for (int c = 0; c < 5; ++c) {
    candidates.push_back((iter + thread + c * 2) % 10);
  }
  return Request(type, std::move(candidates), 3);
}

void ExpectShardSumsMatchGlobals(const ServingEngine& engine) {
  EngineShardStats summed;
  for (int s = 0; s < engine.num_shards(); ++s) {
    const EngineShardStats shard = engine.ShardStats(s);
    summed.requests += shard.requests;
    summed.batches += shard.batches;
    summed.shed += shard.shed;
    summed.pairs_scored += shard.pairs_scored;
    summed.degraded_responses += shard.degraded_responses;
    summed.stale_pairs += shard.stale_pairs;
    summed.prior_pairs += shard.prior_pairs;
  }
  const EngineShardStats total = engine.TotalShardStats();
  EXPECT_EQ(summed.requests, total.requests);
  EXPECT_EQ(summed.batches, total.batches);
  EXPECT_EQ(summed.shed, total.shed);
  EXPECT_EQ(summed.pairs_scored, total.pairs_scored);
  EXPECT_EQ(summed.degraded_responses, total.degraded_responses);
  EXPECT_EQ(summed.stale_pairs, total.stale_pairs);
  EXPECT_EQ(summed.prior_pairs, total.prior_pairs);

  // The per-shard sum must agree exactly with the engine-global atomics
  // maintained independently on the same hot path.
  EXPECT_EQ(total.requests, engine.requests_count());
  EXPECT_EQ(total.shed, engine.shed_count());
  EXPECT_EQ(total.pairs_scored, engine.pairs_scored_count());
  EXPECT_EQ(total.degraded_responses, engine.degraded_count());

  // And the aggregate cache view must match the shard-cache sum.
  const ScoreCache::Stats cache = engine.CacheStats();
  EXPECT_EQ(total.cache.hits, cache.hits);
  EXPECT_EQ(total.cache.misses, cache.misses);
  EXPECT_EQ(total.cache.stale_hits, cache.stale_hits);
  EXPECT_EQ(total.cache.evictions, cache.evictions);
  EXPECT_EQ(total.cache.insertions, cache.insertions);
}

TEST(ServeConcurrentTest, OneThreadAlwaysLandsOnOneShard) {
  ScaledStub model(10, 1.0f);
  ServingOptions options;
  options.num_shards = 8;
  options.cache_capacity = 64;
  const auto engine = ServingEngine::Create(&model, options).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine->Rank(StreamRequest(0, i)).ok());
  }
  int shards_touched = 0;
  for (int s = 0; s < engine->num_shards(); ++s) {
    if (engine->ShardStats(s).requests > 0) ++shards_touched;
  }
  EXPECT_EQ(shards_touched, 1);  // thread-id hash pins the caller
  EXPECT_EQ(engine->TotalShardStats().requests, 20u);
}

TEST(ServeConcurrentTest, SwapStormRepliesBitIdenticalUnderConcurrency) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 256;
  options.cache_shards = 4;
  options.num_shards = 4;
  const auto engine = ServingEngine::Create(&base, options).value();

  // Pre-export one snapshot per scale the storm cycles through.
  const std::vector<float> kScales = {2.0f, 3.0f, 4.0f, 5.0f};
  std::vector<std::string> snapshots;
  for (size_t i = 0; i < kScales.size(); ++i) {
    snapshots.push_back(ExportScaled(
        "concurrent_scale_" + std::to_string(i) + ".snap", kScales[i]));
  }

  constexpr int kThreads = 4;
  constexpr int kMinIters = 400;
  constexpr int kSwaps = 24;

  // epoch -> the float scale that epoch serves; filled by the swapper as
  // promotions happen, read only after every thread joined.
  std::unordered_map<uint64_t, float> scale_by_epoch;
  scale_by_epoch[1] = 1.0f;

  std::atomic<bool> storm_done{false};
  std::vector<std::vector<Record>> records(kThreads);
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      std::vector<Record>& out = records[t];
      // Keep serving for the whole storm so responses span many epochs;
      // alternate the serial and batched entry points.
      for (int iter = 0;
           iter < kMinIters || !storm_done.load(std::memory_order_acquire);
           ++iter) {
        if (iter % 4 == 3) {
          std::vector<RankRequest> batch;
          for (int j = 0; j < 4; ++j) {
            batch.push_back(StreamRequest(t, iter * 4 + j));
          }
          const auto responses = engine->RankSitesBatch(batch);
          ASSERT_EQ(responses.size(), batch.size());
          for (size_t j = 0; j < responses.size(); ++j) {
            ASSERT_TRUE(responses[j].ok()) << responses[j].status();
            out.push_back({batch[j].type, batch[j].candidates, batch[j].k,
                           responses[j]->epoch, responses[j]->tier,
                           responses[j]->sites});
          }
        } else {
          const RankRequest request = StreamRequest(t, iter);
          const auto response = engine->Rank(request);
          ASSERT_TRUE(response.ok()) << response.status();
          out.push_back({request.type, request.candidates, request.k,
                         response->epoch, response->tier, response->sites});
        }
      }
    });
  }

  std::thread swapper([&] {
    // Always release the drivers, even when an assertion returns early —
    // a failed swap must fail the test, not hang it.
    struct StormDone {
      std::atomic<bool>* flag;
      ~StormDone() { flag->store(true, std::memory_order_release); }
    } done_guard{&storm_done};
    for (int s = 0; s < kSwaps; ++s) {
      const size_t which = static_cast<size_t>(s) % kScales.size();
      const auto report = engine->SwapSnapshot(
          snapshots[which], std::make_unique<ScaledStub>(10, 0.0f),
          kConfigHash);
      ASSERT_TRUE(report.ok()) << report.status();
      ASSERT_TRUE(report->promoted) << report->reject_reason;
      scale_by_epoch[report->epoch] = kScales[which];
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  swapper.join();
  for (std::thread& d : drivers) d.join();

  // Replay every record through a fresh single-threaded engine holding the
  // model of the recorded epoch: bit-identical regions and scores.
  std::unordered_map<uint64_t, std::unique_ptr<ScaledStub>> replay_models;
  std::unordered_map<uint64_t, std::unique_ptr<ServingEngine>> replay_engines;
  std::set<uint64_t> epochs_seen;
  size_t replayed = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (const Record& record : records[t]) {
      ASSERT_EQ(record.tier, ServeTier::kFresh);  // nothing ever degraded
      ASSERT_TRUE(scale_by_epoch.count(record.epoch))
          << "response reports an epoch no promotion produced: "
          << record.epoch;
      epochs_seen.insert(record.epoch);
      auto& replay = replay_engines[record.epoch];
      if (replay == nullptr) {
        auto& model = replay_models[record.epoch];
        model = std::make_unique<ScaledStub>(10, scale_by_epoch[record.epoch]);
        ServingOptions replay_options;
        replay_options.cache_capacity = 256;
        replay_options.num_shards = 1;
        replay = ServingEngine::Create(model.get(), replay_options).value();
      }
      const auto expected =
          replay->Rank(Request(record.type, record.candidates, record.k));
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_EQ(record.sites.size(), expected->sites.size());
      for (size_t j = 0; j < record.sites.size(); ++j) {
        ASSERT_EQ(record.sites[j].region, expected->sites[j].region)
            << "epoch " << record.epoch << " rank " << j;
        // Bitwise: a torn swap or cross-epoch mix cannot hide in an
        // approximate comparison.
        ASSERT_EQ(record.sites[j].score, expected->sites[j].score)
            << "epoch " << record.epoch << " rank " << j;
      }
      ++replayed;
    }
  }
  EXPECT_GE(replayed, static_cast<size_t>(kThreads * kMinIters));
  // The storm actually interleaved with serving: responses span several
  // distinct epochs (1 initial + kSwaps promotions existed).
  EXPECT_GE(epochs_seen.size(), 2u);
  EXPECT_EQ(engine->epoch(), static_cast<uint64_t>(1 + kSwaps));

  // Per-shard counter blocks sum exactly to the engine-global atomics.
  ExpectShardSumsMatchGlobals(*engine);
  EXPECT_EQ(engine->requests_count(), replayed);
  EXPECT_EQ(engine->shed_count(), 0u);
  EXPECT_EQ(engine->degraded_count(), 0u);
}

}  // namespace
}  // namespace o2sr::serve
