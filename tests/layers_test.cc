#include "nn/layers.h"

#include <gtest/gtest.h>

namespace o2sr::nn {
namespace {

TEST(LinearTest, ShapeAndBias) {
  ParameterStore store;
  Rng rng(1);
  Linear fc(&store, "fc", 3, 2, rng);
  Tape tape;
  Value x = tape.Input(Tensor::Full(4, 3, 1.0f));
  Value y = fc.Apply(tape, x);
  EXPECT_EQ(tape.rows(y), 4);
  EXPECT_EQ(tape.cols(y), 2);
  // weight + bias registered
  EXPECT_EQ(store.params().size(), 2u);
}

TEST(LinearTest, NoBiasVariant) {
  ParameterStore store;
  Rng rng(1);
  Linear fc(&store, "fc", 3, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(store.params().size(), 1u);
  Tape tape;
  Value y = fc.Apply(tape, tape.Input(Tensor::Zeros(2, 3)));
  // Zero input with no bias -> zero output.
  EXPECT_EQ(tape.value(y).Sum(), 0.0);
}

TEST(LinearTest, ComputesAffineMap) {
  ParameterStore store;
  Rng rng(1);
  Linear fc(&store, "fc", 2, 1, rng);
  // Overwrite weights with known values: y = 2*x0 - x1 + 0.5
  store.params()[0]->value = Tensor::FromVector(2, 1, {2.0f, -1.0f});
  store.params()[1]->value = Tensor::FromVector(1, 1, {0.5f});
  Tape tape;
  Value y = fc.Apply(tape, tape.Input(Tensor::FromVector(1, 2, {3.0f, 4.0f})));
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 0), 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(MlpTest, LayerCountAndShapes) {
  ParameterStore store;
  Rng rng(1);
  Mlp mlp(&store, "mlp", {8, 16, 4, 1}, rng);
  // 3 layers x (weight + bias)
  EXPECT_EQ(store.params().size(), 6u);
  Tape tape;
  Value y = mlp.Apply(tape, tape.Input(Tensor::Zeros(5, 8)));
  EXPECT_EQ(tape.rows(y), 5);
  EXPECT_EQ(tape.cols(y), 1);
}

TEST(MlpTest, OutputActivationApplies) {
  ParameterStore store;
  Rng rng(1);
  Mlp mlp(&store, "mlp", {2, 2}, rng, Activation::kRelu,
          Activation::kSigmoid);
  Tape tape;
  Value y = mlp.Apply(tape, tape.Input(Tensor::RandomNormal(10, 2, 3.0, rng)));
  const Tensor& out = tape.value(y);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out.data()[i], 0.0f);
    EXPECT_LT(out.data()[i], 1.0f);
  }
}

TEST(EmbeddingTest, LookupReturnsTableRows) {
  ParameterStore store;
  Rng rng(1);
  Embedding emb(&store, "emb", 5, 3, rng);
  Tape tape;
  Value rows = emb.Lookup(tape, {4, 0});
  const Tensor& table = store.params()[0]->value;
  const Tensor& out = tape.value(rows);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(out.at(0, c), table.at(4, c));
    EXPECT_EQ(out.at(1, c), table.at(0, c));
  }
}

TEST(EmbeddingTest, GradFlowsOnlyToLookedUpRows) {
  ParameterStore store;
  Rng rng(1);
  Embedding emb(&store, "emb", 4, 2, rng);
  Tape tape;
  Value rows = emb.Lookup(tape, {1});
  tape.Backward(tape.MeanAll(rows));
  const Tensor& grad = store.params()[0]->grad;
  EXPECT_NE(grad.at(1, 0), 0.0f);
  EXPECT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_EQ(grad.at(2, 0), 0.0f);
  EXPECT_EQ(grad.at(3, 0), 0.0f);
}

TEST(EmbeddingTest, FullExposesWholeTable) {
  ParameterStore store;
  Rng rng(1);
  Embedding emb(&store, "emb", 6, 2, rng);
  Tape tape;
  Value full = emb.Full(tape);
  EXPECT_EQ(tape.rows(full), 6);
  EXPECT_EQ(tape.cols(full), 2);
}

}  // namespace
}  // namespace o2sr::nn
