#include <cmath>

#include <gtest/gtest.h>

#include "geo/geometry.h"
#include "geo/grid.h"
#include "geo/poi.h"
#include "geo/road_network.h"

namespace o2sr::geo {
namespace {

TEST(HaversineTest, ZeroForSamePoint) {
  LatLng p{31.23, 121.47};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(HaversineTest, KnownDistanceShanghaiBeijing) {
  // Shanghai (31.2304, 121.4737) to Beijing (39.9042, 116.4074): ~1068 km.
  const double d =
      HaversineMeters({31.2304, 121.4737}, {39.9042, 116.4074});
  EXPECT_NEAR(d, 1068000.0, 10000.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  const double d = HaversineMeters({31.0, 121.0}, {32.0, 121.0});
  EXPECT_NEAR(d, 111195.0, 200.0);
}

TEST(CityFrameTest, RoundTripIsAccurate) {
  CityFrame frame;
  const Point p{4321.0, 8765.0};
  const Point back = frame.ToPoint(frame.ToLatLng(p));
  EXPECT_NEAR(back.x, p.x, 0.01);
  EXPECT_NEAR(back.y, p.y, 0.01);
}

TEST(CityFrameTest, PlanarDistanceMatchesHaversineAtCityScale) {
  CityFrame frame;
  const Point a{1000.0, 2000.0};
  const Point b{6000.0, 9000.0};
  const double planar = EuclideanMeters(a, b);
  const double sphere = HaversineMeters(frame.ToLatLng(a), frame.ToLatLng(b));
  EXPECT_NEAR(planar, sphere, planar * 0.001);
}

TEST(GridTest, DimensionsAndRegionCount) {
  Grid grid(10000.0, 5000.0, 500.0);
  EXPECT_EQ(grid.cols(), 20);
  EXPECT_EQ(grid.rows(), 10);
  EXPECT_EQ(grid.NumRegions(), 200);
}

TEST(GridTest, NonDivisibleSizeRoundsUp) {
  Grid grid(1100.0, 900.0, 500.0);
  EXPECT_EQ(grid.cols(), 3);
  EXPECT_EQ(grid.rows(), 2);
}

TEST(GridTest, RegionOfAndCenterAreConsistent) {
  Grid grid(10000.0, 10000.0, 500.0);
  for (RegionId r : {0, 7, 150, grid.NumRegions() - 1}) {
    EXPECT_EQ(grid.RegionOf(grid.Center(r)), r);
  }
}

TEST(GridTest, OutOfBoundsPointsClampToBorder) {
  Grid grid(1000.0, 1000.0, 500.0);
  EXPECT_EQ(grid.RegionOf({-50.0, -50.0}), 0);
  EXPECT_EQ(grid.RegionOf({5000.0, 5000.0}), grid.NumRegions() - 1);
}

TEST(GridTest, RowColRoundTrip) {
  Grid grid(3000.0, 2000.0, 500.0);
  const RegionId r = 2 * grid.cols() + 3;
  EXPECT_EQ(grid.RowOf(r), 2);
  EXPECT_EQ(grid.ColOf(r), 3);
}

TEST(GridTest, DistanceBetweenAdjacentCellsIsCellSize) {
  Grid grid(3000.0, 3000.0, 500.0);
  EXPECT_DOUBLE_EQ(grid.Distance(0, 1), 500.0);
  EXPECT_DOUBLE_EQ(grid.Distance(0, grid.cols()), 500.0);
  EXPECT_NEAR(grid.Distance(0, grid.cols() + 1), 500.0 * std::sqrt(2.0),
              1e-9);
}

TEST(GridTest, RegionsWithinRadius) {
  Grid grid(5000.0, 5000.0, 500.0);
  const RegionId center = grid.RegionOf({2500.0, 2500.0});
  // 800 m radius covers the 4 orthogonal neighbors (500 m) and the 4
  // diagonal neighbors (707 m) = 8 regions.
  const auto within = grid.RegionsWithin(center, 800.0);
  EXPECT_EQ(within.size(), 8u);
  for (RegionId r : within) {
    EXPECT_LE(grid.Distance(center, r), 800.0);
    EXPECT_NE(r, center);
  }
}

TEST(GridTest, RegionsWithinSmallRadiusIsEmpty) {
  Grid grid(5000.0, 5000.0, 500.0);
  EXPECT_TRUE(grid.RegionsWithin(0, 100.0).empty());
}

TEST(GridTest, CenterDistanceNormBounds) {
  Grid grid(10000.0, 10000.0, 500.0);
  const RegionId middle = grid.RegionOf({5000.0, 5000.0});
  EXPECT_LT(grid.CenterDistanceNorm(middle), 0.1);
  EXPECT_GT(grid.CenterDistanceNorm(0), 0.9);
}

TEST(PoiTest, CountsPerRegionAndCategory) {
  Grid grid(1000.0, 1000.0, 500.0);
  std::vector<Poi> pois = {
      {PoiCategory::kOffice, {100.0, 100.0}},
      {PoiCategory::kOffice, {200.0, 200.0}},
      {PoiCategory::kMall, {600.0, 600.0}},
  };
  const auto counts = CountPoisPerRegion(pois, grid);
  EXPECT_EQ(counts[0][static_cast<int>(PoiCategory::kOffice)], 2.0);
  EXPECT_EQ(counts[3][static_cast<int>(PoiCategory::kMall)], 1.0);
  EXPECT_EQ(counts[1][static_cast<int>(PoiCategory::kOffice)], 0.0);
}

TEST(PoiTest, CategoryNamesAreDistinct) {
  for (int i = 0; i < kNumPoiCategories; ++i) {
    for (int j = i + 1; j < kNumPoiCategories; ++j) {
      EXPECT_STRNE(PoiCategoryName(static_cast<PoiCategory>(i)),
                   PoiCategoryName(static_cast<PoiCategory>(j)));
    }
  }
}

TEST(RoadNetworkTest, TrafficCountsPerRegion) {
  Grid grid(1000.0, 1000.0, 500.0);
  RoadNetwork net;
  net.intersections = {{100.0, 100.0}, {400.0, 100.0}, {900.0, 900.0}};
  net.roads = {{0, 1}, {1, 2}};
  const auto traffic = CountTrafficPerRegion(net, grid);
  EXPECT_EQ(traffic[0].num_intersections, 2);
  EXPECT_EQ(traffic[3].num_intersections, 1);
  // Road 0-1 midpoint (250,100) in region 0; road 1-2 midpoint (650,500)
  // in region 3 (y=500 rounds into the upper row).
  EXPECT_EQ(traffic[0].num_roads, 1);
  EXPECT_EQ(traffic[3].num_roads, 1);
}

}  // namespace
}  // namespace o2sr::geo
