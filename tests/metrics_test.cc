#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace o2sr::eval {
namespace {

TEST(RmseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(NdcgTest, PerfectRankingIsOne) {
  // Truth decreasing with index; predictions agree.
  const std::vector<double> truth = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  const std::vector<double> pred = truth;
  EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, 3, 5), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, 5, 5), 1.0);
}

TEST(NdcgTest, WorstRankingIsZero) {
  // Predictions put the 5 non-relevant items (truth bottom-5) first.
  const std::vector<double> truth = {10, 9, 8, 7, 6, 1, 1, 1, 1, 1};
  const std::vector<double> pred = {0, 0, 0, 0, 0, 5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, 3, 5), 0.0);
}

TEST(NdcgTest, PositionSensitivity) {
  const std::vector<double> truth = {10, 1, 1, 1};  // only item 0 relevant
  // Relevant item at predicted rank 1 vs rank 3.
  const std::vector<double> first = {9, 3, 2, 1};
  const std::vector<double> third = {3, 9, 8, 1};
  const double ndcg_first = NdcgAtK(first, truth, 3, 1);
  const double ndcg_third = NdcgAtK(third, truth, 3, 1);
  EXPECT_DOUBLE_EQ(ndcg_first, 1.0);
  EXPECT_GT(ndcg_first, ndcg_third);
  EXPECT_GT(ndcg_third, 0.0);
  // Hit at rank 3: DCG = 1/log2(4), IDCG = 1.
  EXPECT_NEAR(ndcg_third, 1.0 / std::log2(4.0), 1e-12);
}

TEST(NdcgTest, KLargerThanListIsHandled) {
  const std::vector<double> truth = {3, 2};
  EXPECT_DOUBLE_EQ(NdcgAtK(truth, truth, 10, 1), 1.0);
}

TEST(NdcgTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({}, {}, 3, 5), 0.0);
}

TEST(PrecisionTest, ExactFormula) {
  // Truth top-2 = items 0, 1. Predictions rank 0 first, then 3, then 1.
  const std::vector<double> truth = {10, 9, 1, 2};
  const std::vector<double> pred = {9, 5, 0, 6};
  // Top-3 by prediction: items 0, 3, 1. Hits among truth top-2: 0 and 1.
  EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, 3, 2), 2.0 / 3.0);
}

TEST(PrecisionTest, AllRelevantWhenTopNCoversList) {
  const std::vector<double> truth = {3, 2, 1};
  const std::vector<double> pred = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, 3, 30), 1.0);
}

TEST(PrecisionTest, PerfectAndZero) {
  const std::vector<double> truth = {9, 8, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PrecisionAtK({9, 8, 1, 1, 1, 1}, truth, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 1, 9, 8, 7, 6}, truth, 2, 2), 0.0);
}

// Property sweep: for random data, metrics are bounded, monotone in quality.
class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, BoundsAndPerfectPrediction) {
  Rng rng(GetParam());
  const int n = 50;
  std::vector<double> truth(n);
  for (double& v : truth) v = rng.Uniform(0.0, 100.0);
  std::vector<double> noisy(n);
  for (int i = 0; i < n; ++i) noisy[i] = truth[i] + rng.Normal(0.0, 10.0);

  for (int k : {1, 3, 5, 10}) {
    const double ndcg = NdcgAtK(noisy, truth, k, 20);
    const double prec = PrecisionAtK(noisy, truth, k, 20);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0);
    EXPECT_GE(prec, 0.0);
    EXPECT_LE(prec, 1.0);
    // The exact truth as prediction is perfect.
    EXPECT_DOUBLE_EQ(NdcgAtK(truth, truth, k, 20), 1.0);
    EXPECT_DOUBLE_EQ(PrecisionAtK(truth, truth, k, 20), 1.0);
  }
}

TEST_P(MetricPropertyTest, NoisierPredictionsScoreWorseOnAverage) {
  Rng rng(GetParam() + 1000);
  double good_sum = 0.0, bad_sum = 0.0;
  for (int round = 0; round < 30; ++round) {
    const int n = 60;
    std::vector<double> truth(n), good(n), bad(n);
    for (int i = 0; i < n; ++i) {
      truth[i] = rng.Uniform(0.0, 100.0);
      good[i] = truth[i] + rng.Normal(0.0, 5.0);
      bad[i] = truth[i] + rng.Normal(0.0, 60.0);
    }
    good_sum += NdcgAtK(good, truth, 5, 20);
    bad_sum += NdcgAtK(bad, truth, 5, 20);
  }
  EXPECT_GT(good_sum, bad_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace o2sr::eval
