#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "core/recommender.h"
#include "serve/engine.h"

namespace o2sr::eval {
namespace {

TEST(RmseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(NdcgTest, PerfectRankingIsOne) {
  // Truth decreasing with index; predictions agree.
  const std::vector<double> truth = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  const std::vector<double> pred = truth;
  EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, 3, 5), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, 5, 5), 1.0);
}

TEST(NdcgTest, WorstRankingIsZero) {
  // Predictions put the 5 non-relevant items (truth bottom-5) first.
  const std::vector<double> truth = {10, 9, 8, 7, 6, 1, 1, 1, 1, 1};
  const std::vector<double> pred = {0, 0, 0, 0, 0, 5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, 3, 5), 0.0);
}

TEST(NdcgTest, PositionSensitivity) {
  const std::vector<double> truth = {10, 1, 1, 1};  // only item 0 relevant
  // Relevant item at predicted rank 1 vs rank 3.
  const std::vector<double> first = {9, 3, 2, 1};
  const std::vector<double> third = {3, 9, 8, 1};
  const double ndcg_first = NdcgAtK(first, truth, 3, 1);
  const double ndcg_third = NdcgAtK(third, truth, 3, 1);
  EXPECT_DOUBLE_EQ(ndcg_first, 1.0);
  EXPECT_GT(ndcg_first, ndcg_third);
  EXPECT_GT(ndcg_third, 0.0);
  // Hit at rank 3: DCG = 1/log2(4), IDCG = 1.
  EXPECT_NEAR(ndcg_third, 1.0 / std::log2(4.0), 1e-12);
}

TEST(NdcgTest, KLargerThanListIsHandled) {
  const std::vector<double> truth = {3, 2};
  EXPECT_DOUBLE_EQ(NdcgAtK(truth, truth, 10, 1), 1.0);
}

TEST(NdcgTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({}, {}, 3, 5), 0.0);
}

TEST(PrecisionTest, ExactFormula) {
  // Truth top-2 = items 0, 1. Predictions rank 0 first, then 3, then 1.
  const std::vector<double> truth = {10, 9, 1, 2};
  const std::vector<double> pred = {9, 5, 0, 6};
  // Top-3 by prediction: items 0, 3, 1. Hits among truth top-2: 0 and 1.
  EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, 3, 2), 2.0 / 3.0);
}

TEST(PrecisionTest, AllRelevantWhenTopNCoversList) {
  const std::vector<double> truth = {3, 2, 1};
  const std::vector<double> pred = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, 3, 30), 1.0);
}

TEST(PrecisionTest, PerfectAndZero) {
  const std::vector<double> truth = {9, 8, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PrecisionAtK({9, 8, 1, 1, 1, 1}, truth, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 1, 9, 8, 7, 6}, truth, 2, 2), 0.0);
}

// Property sweep: for random data, metrics are bounded, monotone in quality.
class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, BoundsAndPerfectPrediction) {
  Rng rng(GetParam());
  const int n = 50;
  std::vector<double> truth(n);
  for (double& v : truth) v = rng.Uniform(0.0, 100.0);
  std::vector<double> noisy(n);
  for (int i = 0; i < n; ++i) noisy[i] = truth[i] + rng.Normal(0.0, 10.0);

  for (int k : {1, 3, 5, 10}) {
    const double ndcg = NdcgAtK(noisy, truth, k, 20);
    const double prec = PrecisionAtK(noisy, truth, k, 20);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0);
    EXPECT_GE(prec, 0.0);
    EXPECT_LE(prec, 1.0);
    // The exact truth as prediction is perfect.
    EXPECT_DOUBLE_EQ(NdcgAtK(truth, truth, k, 20), 1.0);
    EXPECT_DOUBLE_EQ(PrecisionAtK(truth, truth, k, 20), 1.0);
  }
}

TEST_P(MetricPropertyTest, NoisierPredictionsScoreWorseOnAverage) {
  Rng rng(GetParam() + 1000);
  double good_sum = 0.0, bad_sum = 0.0;
  for (int round = 0; round < 30; ++round) {
    const int n = 60;
    std::vector<double> truth(n), good(n), bad(n);
    for (int i = 0; i < n; ++i) {
      truth[i] = rng.Uniform(0.0, 100.0);
      good[i] = truth[i] + rng.Normal(0.0, 5.0);
      bad[i] = truth[i] + rng.Normal(0.0, 60.0);
    }
    good_sum += NdcgAtK(good, truth, 5, 20);
    bad_sum += NdcgAtK(bad, truth, 5, 20);
  }
  EXPECT_GT(good_sum, bad_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Permutation-safety under ties ------------------------------------
//
// Draw predictions and truths from tiny value sets so both are riddled
// with ties, then reorder the (prediction, truth) pairs: the metrics must
// not move at all. The old argsort-with-index-tie-break definition fails
// this — whichever tied item happened to come first got the better rank.

TEST_P(MetricPropertyTest, TiedInputsArePermutationSafe) {
  Rng rng(GetParam() + 5000);
  for (int round = 0; round < 20; ++round) {
    const int n = 40;
    std::vector<double> pred(n), truth(n);
    for (int i = 0; i < n; ++i) {
      pred[i] = rng.UniformInt(0, 4);   // 5 distinct values: heavy ties
      truth[i] = rng.UniformInt(0, 3);  // boundary ties in the top-N too
    }
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm);
    std::vector<double> pred_p(n), truth_p(n);
    for (int i = 0; i < n; ++i) {
      pred_p[i] = pred[perm[i]];
      truth_p[i] = truth[perm[i]];
    }
    for (int k : {1, 3, 5, 10}) {
      for (int top_n : {5, 10, 30}) {
        EXPECT_DOUBLE_EQ(NdcgAtK(pred, truth, k, top_n),
                         NdcgAtK(pred_p, truth_p, k, top_n))
            << "round " << round << " k " << k << " top_n " << top_n;
        EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, k, top_n),
                         PrecisionAtK(pred_p, truth_p, k, top_n))
            << "round " << round << " k " << k << " top_n " << top_n;
      }
    }
  }
}

TEST(MetricTieTest, FullyTiedPredictionsScoreTheRelevantDensity) {
  // All predictions equal: every ordering is equally likely, so
  // Precision@k must be the relevant fraction of the list, not whatever
  // the index order rewards.
  const std::vector<double> truth = {10, 9, 1, 1};  // top-2 relevant
  const std::vector<double> pred = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, 2, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(pred, truth, 4, 2), 0.5);
}

// --- Ranking invariants of the serving engine -------------------------

// Deterministic stand-in model with deliberately quantized scores, so tie
// groups are common and the (score desc, region asc) order is exercised.
class QuantizedStub : public core::SiteRecommender {
 public:
  explicit QuantizedStub(int num_regions) : num_regions_(num_regions) {}
  std::string Name() const override { return "QuantizedStub"; }
  common::Status Train(const core::TrainContext&) override {
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    std::vector<double> out;
    out.reserve(pairs.size());
    for (const core::Interaction& it : pairs) {
      out.push_back(Score(it.region, it.type));
    }
    return out;
  }
  bool CanScoreRegion(int region) const override {
    return region >= 0 && region < num_regions_;
  }
  static double Score(int region, int type) {
    // 13 distinct score levels over hundreds of regions: dense ties.
    const uint32_t h = static_cast<uint32_t>(region) * 2654435761u +
                       static_cast<uint32_t>(type) * 97u;
    return static_cast<double>(h % 13u) / 13.0;
  }

 private:
  int num_regions_;
};

std::vector<int> RandomCandidates(Rng& rng, int num_regions, int count) {
  std::vector<int> out(count);
  for (int& r : out) r = rng.UniformInt(0, num_regions - 1);  // dupes ok
  return out;
}

TEST(RankingInvariantTest, RankSitesKIsAPrefixOfKPlusOne) {
  QuantizedStub model(200);
  serve::ServingOptions options;
  options.cache_capacity = 32;
  const auto engine = serve::ServingEngine::Create(&model, options).value();
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    const std::vector<int> candidates = RandomCandidates(rng, 200, 50);
    const int type = rng.UniformInt(0, 5);
    for (int k = 0; k < 12; ++k) {
      const auto shorter = engine->RankSites(type, candidates, k).value();
      const auto longer = engine->RankSites(type, candidates, k + 1).value();
      ASSERT_LE(shorter.size(), longer.size());
      for (size_t i = 0; i < shorter.size(); ++i) {
        EXPECT_EQ(shorter[i].region, longer[i].region);
        EXPECT_EQ(shorter[i].score, longer[i].score);
      }
    }
  }
}

TEST(RankingInvariantTest, TopKMatchesSortingTheFullScoreList) {
  QuantizedStub model(150);
  serve::ServingOptions options;
  options.cache_capacity = 0;  // isolate the ordering logic
  const auto engine = serve::ServingEngine::Create(&model, options).value();
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    const std::vector<int> candidates = RandomCandidates(rng, 150, 60);
    const int type = rng.UniformInt(0, 5);

    // Reference: dedupe, score everything through Predict, full sort.
    std::vector<int> unique = candidates;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    std::vector<serve::RankedSite> reference;
    for (int region : unique) {
      reference.push_back({region, QuantizedStub::Score(region, type)});
    }
    std::sort(reference.begin(), reference.end(),
              [](const serve::RankedSite& a, const serve::RankedSite& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.region < b.region;
              });

    const int k = rng.UniformInt(1, static_cast<int>(unique.size()));
    const auto ranked = engine->RankSites(type, candidates, k).value();
    ASSERT_EQ(ranked.size(), static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(ranked[i].region, reference[i].region);
      EXPECT_EQ(ranked[i].score, reference[i].score);
    }
  }
}

TEST(RankingInvariantTest, CacheNeverChangesReturnedScores) {
  QuantizedStub model(120);
  serve::ServingOptions cached_options;
  cached_options.cache_capacity = 16;  // tiny: constant evictions
  cached_options.cache_shards = 2;
  const auto cached =
      serve::ServingEngine::Create(&model, cached_options).value();
  serve::ServingOptions uncached_options;
  uncached_options.cache_capacity = 0;
  const auto uncached =
      serve::ServingEngine::Create(&model, uncached_options).value();

  Rng rng(55);
  for (int round = 0; round < 25; ++round) {
    const std::vector<int> candidates = RandomCandidates(rng, 120, 40);
    const int type = rng.UniformInt(0, 3);
    const auto a = cached->RankSites(type, candidates, 15).value();
    const auto b = uncached->RankSites(type, candidates, 15).value();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].region, b[i].region);
      EXPECT_EQ(a[i].score, b[i].score) << "cold/warm divergence, round "
                                        << round << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace o2sr::eval
