#include "serve/score_cache.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace o2sr::serve {
namespace {

// Multithreaded stress over the full ScoreCache surface. Run under TSAN in
// CI (ci.sh wires this binary into the sanitizer job): the interesting
// assertions are the ones the tool makes about the sharded locking and the
// lock-free statistics, not just the ones below.

// xorshift64: cheap per-thread deterministic op stream.
uint64_t Next(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

TEST(ScoreCacheStressTest, ConcurrentMixedTrafficKeepsCountsConsistent) {
  ScoreCache cache(256, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  constexpr int kRegions = 128;
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> wrong_values{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1);
      uint64_t my_lookups = 0, my_inserts = 0, my_wrong = 0;
      for (int i = 0; i < kOps; ++i) {
        const uint64_t r = Next(&state);
        const uint64_t key = ScoreCache::Key(
            static_cast<int>(r % 4), static_cast<int>((r >> 8) % kRegions));
        const uint64_t epoch = 1 + ((r >> 20) & 1);
        double score = 0.0;
        switch ((r >> 4) % 4) {
          case 0:
          case 1:
            // Every entry is inserted with score == key, so any hit that
            // disagrees is a real corruption, not a stale-vs-fresh artifact.
            if (cache.Lookup(key, epoch, &score) &&
                score != static_cast<double>(key)) {
              ++my_wrong;
            }
            ++my_lookups;
            break;
          case 2:
            cache.Insert(key, epoch, static_cast<double>(key));
            ++my_inserts;
            break;
          case 3:
            if (cache.LookupStale(key, &score) &&
                score != static_cast<double>(key)) {
              ++my_wrong;
            }
            break;
        }
      }
      lookups.fetch_add(my_lookups);
      inserts.fetch_add(my_inserts);
      wrong_values.fetch_add(my_wrong);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong_values.load(), 0u);
  const ScoreCache::Stats stats = cache.stats();
  // Every fresh lookup lands in exactly one of hits/misses; every insert is
  // counted; an eviction needs an insertion to displace it.
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.insertions, inserts.load());
  EXPECT_LE(stats.evictions, stats.insertions);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ScoreCacheStressTest, InvalidateRacesWithTraffic) {
  ScoreCache cache(128, 4);
  constexpr int kThreads = 6;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x51afd7ed558ccdull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOps; ++i) {
        const uint64_t r = Next(&state);
        const uint64_t key = ScoreCache::Key(0, static_cast<int>(r % 64));
        double score = 0.0;
        if ((r & 1) != 0) {
          cache.Insert(key, /*epoch=*/1, static_cast<double>(key));
        } else {
          cache.Lookup(key, /*epoch=*/1, &score);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      cache.Invalidate();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0);
  double score = 0.0;
  EXPECT_FALSE(cache.LookupStale(ScoreCache::Key(0, 1), &score));
}

// Regression for the per-shard stat blocks (DESIGN.md §14): under full
// concurrency the shard blocks must add up exactly to the aggregate view,
// and a disabled cache must still account every miss. Before the blocks
// existed, five instance-global atomics carried these counts and TSAN had
// nothing to say — now the proof is that sharded accounting loses nothing.
TEST(ScoreCacheStressTest, ShardStatBlocksSumToTheAggregate) {
  ScoreCache cache(256, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 15000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x2545f4914f6cdd1dull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOps; ++i) {
        const uint64_t r = Next(&state);
        const uint64_t key = ScoreCache::Key(
            static_cast<int>(r % 8), static_cast<int>((r >> 8) % 192));
        double score = 0.0;
        switch ((r >> 4) % 3) {
          case 0:
            cache.Lookup(key, 1, &score);
            break;
          case 1:
            cache.Insert(key, 1, static_cast<double>(key));
            break;
          case 2:
            cache.LookupStale(key, &score);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ScoreCache::Stats summed;
  for (int s = 0; s < cache.num_shards(); ++s) {
    const ScoreCache::Stats shard = cache.ShardStats(s);
    summed.hits += shard.hits;
    summed.misses += shard.misses;
    summed.stale_hits += shard.stale_hits;
    summed.evictions += shard.evictions;
    summed.insertions += shard.insertions;
  }
  const ScoreCache::Stats total = cache.stats();
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.stale_hits, total.stale_hits);
  EXPECT_EQ(summed.evictions, total.evictions);
  EXPECT_EQ(summed.insertions, total.insertions);
  EXPECT_GT(total.insertions, 0u);
}

TEST(ScoreCacheStressTest, DisabledCacheStillAccountsEveryMiss) {
  ScoreCache cache(0, 4);
  EXPECT_EQ(cache.num_shards(), 0);
  double score = 0.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.Lookup(ScoreCache::Key(1, i), 1, &score));
    cache.Insert(ScoreCache::Key(1, i), 1, 1.0);  // dropped, not counted
  }
  const ScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST(ScoreCacheStressTest, StatsSnapshotsAreMonotoneUnderConcurrentTraffic) {
  ScoreCache cache(64, 4);
  std::atomic<bool> done{false};
  std::thread traffic([&] {
    uint64_t state = 0xbf58476d1ce4e5b9ull;
    while (!done.load(std::memory_order_relaxed)) {
      const uint64_t r = Next(&state);
      const uint64_t key = ScoreCache::Key(1, static_cast<int>(r % 96));
      double score = 0.0;
      if ((r & 3) == 0) {
        cache.Insert(key, 1, 1.0);
      } else {
        cache.Lookup(key, 1, &score);
      }
    }
  });
  ScoreCache::Stats last;
  for (int i = 0; i < 2000; ++i) {
    const ScoreCache::Stats now = cache.stats();
    EXPECT_GE(now.hits, last.hits);
    EXPECT_GE(now.misses, last.misses);
    EXPECT_GE(now.insertions, last.insertions);
    EXPECT_GE(now.evictions, last.evictions);
    last = now;
  }
  done.store(true, std::memory_order_relaxed);
  traffic.join();
}

}  // namespace
}  // namespace o2sr::serve
