#include "core/courier_capacity_model.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "features/order_stats.h"
#include "sim/dataset.h"

namespace o2sr::core {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3000.0;
  cfg.city_height_m = 3000.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 90;
  cfg.num_couriers = 50;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 41;
  return cfg;
}

class CapacityModelTest : public ::testing::Test {
 protected:
  CapacityModelTest()
      : data_(sim::GenerateDataset(TestConfig())),
        stats_(data_),
        geo_(data_.city.grid),
        mobility_(stats_) {}

  sim::Dataset data_;
  features::OrderStats stats_;
  graphs::GeoGraph geo_;
  graphs::MobilityMultiGraph mobility_;
};

TEST_F(CapacityModelTest, RegionEmbeddingShapes) {
  nn::ParameterStore store;
  Rng rng(1);
  CourierCapacityConfig cfg;
  cfg.embedding_dim = 12;
  CourierCapacityModel model(geo_, mobility_, cfg, &store, rng);
  nn::Tape tape;
  nn::Value emb = model.RegionEmbeddings(tape, 1);
  EXPECT_EQ(tape.rows(emb), data_.num_regions());
  EXPECT_EQ(tape.cols(emb), 12);
  EXPECT_EQ(model.edge_embedding_dim(), 24);
}

TEST_F(CapacityModelTest, EdgeEmbeddingConcatenatesRegionEmbeddings) {
  nn::ParameterStore store;
  Rng rng(1);
  CourierCapacityConfig cfg;
  cfg.embedding_dim = 8;
  CourierCapacityModel model(geo_, mobility_, cfg, &store, rng);
  nn::Tape tape;
  nn::Value emb = model.RegionEmbeddings(tape, 0);
  nn::Value edge = model.EdgeEmbeddings(tape, emb, {3, 5}, {4, 6});
  ASSERT_EQ(tape.rows(edge), 2);
  ASSERT_EQ(tape.cols(edge), 16);
  // em_{i,j} = [b_j, b_i]: first half is the destination embedding.
  const nn::Tensor& e = tape.value(edge);
  const nn::Tensor& b = tape.value(emb);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(e.at(0, c), b.at(4, c));      // b_j, j = dst = 4
    EXPECT_EQ(e.at(0, 8 + c), b.at(3, c));  // b_i, i = src = 3
  }
}

TEST_F(CapacityModelTest, PredictionsInUnitRange) {
  nn::ParameterStore store;
  Rng rng(1);
  CourierCapacityModel model(geo_, mobility_, {}, &store, rng);
  nn::Tape tape;
  nn::Value emb = model.RegionEmbeddings(tape, 2);
  nn::Value edge = model.EdgeEmbeddings(tape, emb, {0, 1, 2}, {3, 4, 5});
  const nn::Tensor& pred = tape.value(model.PredictDeliveryNorm(tape, edge));
  for (size_t i = 0; i < pred.size(); ++i) {
    EXPECT_GT(pred.data()[i], 0.0f);
    EXPECT_LT(pred.data()[i], 1.0f);
  }
}

TEST_F(CapacityModelTest, TrainingReducesReconstructionLoss) {
  nn::ParameterStore store;
  Rng rng(1);
  CourierCapacityConfig cfg;
  cfg.embedding_dim = 16;
  CourierCapacityModel model(geo_, mobility_, cfg, &store, rng);
  nn::AdamOptimizer::Options opt;
  opt.learning_rate = 5e-3;
  nn::AdamOptimizer adam(&store, opt);
  double first = 0.0, last = 0.0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    nn::Tape tape;
    nn::Value loss = model.ReconstructionLoss(tape);
    last = tape.value(loss).at(0, 0);
    if (epoch == 0) first = last;
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.6);
}

TEST_F(CapacityModelTest, LearnedDeliveryTimesCorrelateWithObservations) {
  nn::ParameterStore store;
  Rng rng(1);
  CourierCapacityConfig cfg;
  cfg.embedding_dim = 16;
  CourierCapacityModel model(geo_, mobility_, cfg, &store, rng);
  nn::AdamOptimizer::Options opt;
  opt.learning_rate = 5e-3;
  nn::AdamOptimizer adam(&store, opt);
  for (int epoch = 0; epoch < 120; ++epoch) {
    nn::Tape tape;
    nn::Value loss = model.ReconstructionLoss(tape);
    tape.Backward(loss);
    adam.Step();
  }
  std::vector<double> predicted, observed;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    int taken = 0;
    for (const graphs::MobilityEdge& e : mobility_.EdgesInPeriod(p)) {
      if (e.transactions < 3 || ++taken > 60) continue;
      predicted.push_back(model.PredictDeliveryMinutes(p, e.src, e.dst));
      observed.push_back(e.delivery_minutes);
    }
  }
  ASSERT_GT(predicted.size(), 50u);
  EXPECT_GT(PearsonCorrelation(predicted, observed), 0.5);
}

TEST_F(CapacityModelTest, LossFromEmbeddingsMatchesDirectLoss) {
  nn::ParameterStore store;
  Rng rng(1);
  CourierCapacityModel model(geo_, mobility_, {}, &store, rng);
  nn::Tape tape;
  std::vector<nn::Value> embs(sim::kNumPeriods);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    embs[p] = model.RegionEmbeddings(tape, p);
  }
  nn::Value from_embs = model.ReconstructionLossFromEmbeddings(tape, embs);
  nn::Tape tape2;
  nn::Value direct = model.ReconstructionLoss(tape2);
  EXPECT_NEAR(tape.value(from_embs).at(0, 0), tape2.value(direct).at(0, 0),
              1e-5);
}

TEST_F(CapacityModelTest, DeterministicGivenSeed) {
  auto run = [&]() {
    nn::ParameterStore store;
    Rng rng(9);
    CourierCapacityModel model(geo_, mobility_, {}, &store, rng);
    return model.PredictDeliveryMinutes(1, 2, 10);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace o2sr::core
