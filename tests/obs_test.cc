// Unit tests of the observability library: JSON formatting helpers,
// counter/gauge/histogram semantics, deterministic trace export with an
// injected clock, and logger level filtering.

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace o2sr::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON helpers

TEST(JsonTest, QuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonQuote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(JsonTest, NumShortestRoundTrip) {
  EXPECT_EQ(JsonNum(0.0), "0");
  EXPECT_EQ(JsonNum(3.0), "3");
  EXPECT_EQ(JsonNum(0.25), "0.25");
  EXPECT_EQ(JsonNum(int64_t{-17}), "-17");
  EXPECT_EQ(JsonNum(uint64_t{17}), "17");
  // Round trip: parsing the printed text recovers the exact double.
  const double value = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonNum(value)), value);
}

TEST(JsonTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNum(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNum(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNum(-std::numeric_limits<double>::infinity()), "null");
}

// ---------------------------------------------------------------------------
// Counter / gauge

TEST(MetricsTest, CounterAccumulates) {
  Counter c("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  Gauge g("test.gauge");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(MetricsTest, RegistryReturnsSamePointerForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketCountsFollowUpperEdges) {
  Histogram h("h", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.Observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  // Edges are inclusive: 1.0 lands in the first bucket; 100 overflows.
  const std::vector<uint64_t> expected = {2, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h("h", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(5.0);   // bucket [0, 10]
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // bucket (10, 20]
  // p50 sits exactly at the first bucket's upper edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  // p75 is halfway through the second bucket: 10 + (20-10) * 0.5.
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
}

TEST(HistogramTest, OverflowReportsLastFiniteEdge) {
  Histogram h("h", {1.0, 2.0});
  h.Observe(50.0);
  h.Observe(60.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h("h", {1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsTest, DumpsAreDeterministicAndSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(2);
  registry.GetCounter("a.counter")->Increment(1);
  registry.GetGauge("z.gauge")->Set(0.5);
  registry.GetHistogram("m.hist", {1.0, 2.0})->Observe(1.5);

  const std::string json = registry.DumpJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.counter\":1,\"b.counter\":2},"
            "\"gauges\":{\"z.gauge\":0.5},"
            "\"histograms\":{\"m.hist\":{\"count\":1,\"sum\":1.5,"
            "\"p50\":1.5,\"p95\":1.95,\"p99\":1.99}}}");
  // Text dump: sorted, one instrument per line.
  std::ostringstream text;
  registry.DumpText(text);
  const std::string dump = text.str();
  EXPECT_LT(dump.find("a.counter"), dump.find("b.counter"));
  EXPECT_NE(dump.find("counter a.counter 1"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------------
// Trace recorder (injected clock -> byte-exact export)

TEST(TraceTest, NestedSpansExportDeterministicChromeTrace) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });

  const int64_t outer = recorder.Begin("outer");
  now = 10;
  const int64_t inner = recorder.Begin("inner");
  now = 30;
  recorder.End(inner);
  now = 100;
  recorder.End(outer);

  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);

  EXPECT_EQ(recorder.ExportChromeTraceJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"outer\",\"cat\":\"o2sr\",\"ph\":\"X\",\"ts\":0,"
            "\"dur\":100,\"pid\":0,\"tid\":0},"
            "{\"name\":\"inner\",\"cat\":\"o2sr\",\"ph\":\"X\",\"ts\":10,"
            "\"dur\":20,\"pid\":0,\"tid\":0}]}");
}

TEST(TraceTest, StageMillisAggregatesByName) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  for (int i = 0; i < 3; ++i) {
    const int64_t h = recorder.Begin("stage");
    now += 2000;  // 2 ms each
    recorder.End(h);
  }
  const auto stages = recorder.StageMillis();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_DOUBLE_EQ(stages.at("stage"), 6.0);
}

TEST(TraceTest, OpenSpansAreClosedAtExportTime) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  recorder.Begin("open");
  now = 5000;
  EXPECT_DOUBLE_EQ(recorder.StageMillis().at("open"), 5.0);
  EXPECT_NE(recorder.ExportChromeTraceJson().find("\"dur\":5000"),
            std::string::npos);
}

TEST(TraceTest, ScopedTraceRecordsOnDestruction) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  {
    ScopedTrace scope("scoped", &recorder);
    now = 42;
  }
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "scoped");
  EXPECT_EQ(spans[0].dur_us, 42);
}

TEST(TraceTest, RecordingOffDropsSpans) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  recorder.SetRecording(false);
  { ScopedTrace scope("dropped", &recorder); }
  EXPECT_EQ(recorder.span_count(), 0u);
  recorder.SetRecording(true);
  { ScopedTrace scope("kept", &recorder); }
  EXPECT_EQ(recorder.span_count(), 1u);
}

// ---------------------------------------------------------------------------
// Logger

struct CapturedLog {
  LogLevel level;
  std::string file;
  int line;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = MinLogLevel();
    SetLogSink([this](LogLevel level, const std::string& file, int line,
                      const std::string& message) {
      captured_.push_back({level, file, line, message});
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(saved_level_);
  }

  std::vector<CapturedLog> captured_;
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LogTest, LevelThresholdFilters) {
  SetMinLogLevel(LogLevel::kWarning);
  O2SR_LOG(DEBUG) << "debug";
  O2SR_LOG(INFO) << "info";
  O2SR_LOG(WARNING) << "warning";
  O2SR_LOG(ERROR) << "error";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].level, LogLevel::kWarning);
  EXPECT_EQ(captured_[0].message, "warning");
  EXPECT_EQ(captured_[1].level, LogLevel::kError);
}

TEST_F(LogTest, SuppressedStreamIsNotEvaluated) {
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "expensive";
  };
  O2SR_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0);
  O2SR_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, SinkReceivesBasenameAndLine) {
  SetMinLogLevel(LogLevel::kInfo);
  O2SR_LOG(INFO) << "here";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].file, "obs_test.cc");
  EXPECT_GT(captured_[0].line, 0);
}

TEST_F(LogTest, OffLevelEmitsNothing) {
  SetMinLogLevel(LogLevel::kOff);
  O2SR_LOG(ERROR) << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelTest, ParseAndNameRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kOff}) {
    const auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
}

}  // namespace
}  // namespace o2sr::obs
