// Unit tests of the observability library: JSON formatting helpers,
// counter/gauge/histogram semantics, deterministic trace export with an
// injected clock, and logger level filtering.

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace o2sr::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON helpers

TEST(JsonTest, QuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonQuote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(JsonTest, NumShortestRoundTrip) {
  EXPECT_EQ(JsonNum(0.0), "0");
  EXPECT_EQ(JsonNum(3.0), "3");
  EXPECT_EQ(JsonNum(0.25), "0.25");
  EXPECT_EQ(JsonNum(int64_t{-17}), "-17");
  EXPECT_EQ(JsonNum(uint64_t{17}), "17");
  // Round trip: parsing the printed text recovers the exact double.
  const double value = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonNum(value)), value);
}

TEST(JsonTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNum(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNum(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNum(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, FixedPrecisionIsExactText) {
  // The whole point of JsonFixed: the text is the rounded decimal, not the
  // shortest round-trip ("265.074", never "265.07399999999996").
  EXPECT_EQ(JsonFixed(265.07399999999996, 3), "265.074");
  EXPECT_EQ(JsonFixed(0.0, 3), "0.000");
  EXPECT_EQ(JsonFixed(-1.23456, 2), "-1.23");
  EXPECT_EQ(JsonFixed(2.5, 0), "2");  // %.0f banker's-free rounding via libc
  EXPECT_EQ(JsonFixed(std::numeric_limits<double>::quiet_NaN(), 3), "null");
  EXPECT_EQ(JsonFixed(std::numeric_limits<double>::infinity(), 3), "null");
  // Decimals outside [0, 17] clamp instead of corrupting the format string.
  EXPECT_EQ(JsonFixed(1.5, -4), "2");
}

// ---------------------------------------------------------------------------
// JSON parser (the read side of the exporters)

TEST(JsonParseTest, RoundTripsOwnExporterOutput) {
  const std::string text =
      "{\"name\":\"bench\",\"n\":3,\"pi\":3.25,\"ok\":true,\"missing\":null,"
      "\"list\":[1,2,3],\"nested\":{\"a\":-1e2}}";
  const auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.StringOr("name", ""), "bench");
  EXPECT_DOUBLE_EQ(v.NumberOr("n", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(v.NumberOr("pi", 0.0), 3.25);
  ASSERT_NE(v.Find("ok"), nullptr);
  EXPECT_TRUE(v.Find("ok")->bool_value());
  EXPECT_TRUE(v.Find("missing")->is_null());
  ASSERT_TRUE(v.Find("list")->is_array());
  EXPECT_EQ(v.Find("list")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("nested")->NumberOr("a", 0.0), -100.0);
  // Member order is source order.
  EXPECT_EQ(v.members().front().first, "name");
}

TEST(JsonParseTest, EscapesAndUnicodeDecode) {
  const auto parsed = ParseJson("\"a\\\"b\\\\c\\n\\u0041\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->string_value(), "a\"b\\c\nA");
}

TEST(JsonParseTest, MalformedInputsAreInvalidArgument) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1} trailing", "[1 2]", "{'single':1}"}) {
    const auto parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), common::StatusCode::kInvalidArgument)
        << bad;
  }
}

TEST(JsonParseTest, RejectsPathologicalNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParseTest, MissingFileIsAnError) {
  const auto parsed = ParseJsonFile("/nonexistent/bench.json");
  EXPECT_FALSE(parsed.ok());
}

// ---------------------------------------------------------------------------
// Counter / gauge

TEST(MetricsTest, CounterAccumulates) {
  Counter c("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  Gauge g("test.gauge");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(MetricsTest, RegistryReturnsSamePointerForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketCountsFollowUpperEdges) {
  Histogram h("h", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.Observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  // Edges are inclusive: 1.0 lands in the first bucket; 100 overflows.
  const std::vector<uint64_t> expected = {2, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h("h", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(5.0);   // bucket [0, 10]
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // bucket (10, 20]
  // p50 sits exactly at the first bucket's upper edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  // p75 is halfway through the second bucket: 10 + (20-10) * 0.5.
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
}

TEST(HistogramTest, OverflowReportsLastFiniteEdge) {
  Histogram h("h", {1.0, 2.0});
  h.Observe(50.0);
  h.Observe(60.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h("h", {1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, KnownUniformDistributionPercentiles) {
  // 1..1000 uniformly against decade-aligned edges: with interpolation the
  // quantile of a uniform stream should track the true percentile to within
  // one bucket's width.
  std::vector<double> edges;
  for (double e = 10.0; e <= 1000.0; e += 10.0) edges.push_back(e);
  Histogram h("h", edges);
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.50), 500.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.90), 900.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, SingleSampleAllQuantilesInItsBucket) {
  Histogram h("h", {1.0, 2.0, 4.0});
  h.Observe(1.7);
  EXPECT_EQ(h.count(), 1u);
  // q=0 sits on the bucket's lower edge; everything else interpolates
  // inside (1, 2].
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 2.0) << "q=" << q;
  }
}

TEST(HistogramTest, ConcurrentAppendsMatchSequentialResult) {
  // Bucket counts are a commutative sum, so racing writers must land on
  // the same histogram a single thread would produce — quantiles included.
  const std::vector<double> edges = {1.0, 2.0, 4.0, 8.0, 16.0};
  Histogram sequential("seq", edges);
  Histogram concurrent("conc", edges);
  const int kThreads = 8, kPerThread = 2000;
  // Exact binary fractions (multiples of 1/8) keep the mutex-ordered sum
  // independent of interleaving: every partial sum is exact.
  auto value_of = [](int t, int i) {
    return 0.5 + static_cast<double>((t * 31 + i * 7) % 160) * 0.125;
  };
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) sequential.Observe(value_of(t, i));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        concurrent.Observe(value_of(t, i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(concurrent.count(), sequential.count());
  EXPECT_DOUBLE_EQ(concurrent.sum(), sequential.sum());
  EXPECT_EQ(concurrent.bucket_counts(), sequential.bucket_counts());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(concurrent.Quantile(q), sequential.Quantile(q));
  }
}

TEST(MetricsTest, DumpsAreDeterministicAndSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(2);
  registry.GetCounter("a.counter")->Increment(1);
  registry.GetGauge("z.gauge")->Set(0.5);
  registry.GetHistogram("m.hist", {1.0, 2.0})->Observe(1.5);

  const std::string json = registry.DumpJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.counter\":1,\"b.counter\":2},"
            "\"gauges\":{\"z.gauge\":0.5},"
            "\"histograms\":{\"m.hist\":{\"count\":1,\"sum\":1.5,"
            "\"p50\":1.5,\"p95\":1.95,\"p99\":1.99}}}");
  // Text dump: sorted, one instrument per line.
  std::ostringstream text;
  registry.DumpText(text);
  const std::string dump = text.str();
  EXPECT_LT(dump.find("a.counter"), dump.find("b.counter"));
  EXPECT_NE(dump.find("counter a.counter 1"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------------
// Trace recorder (injected clock -> byte-exact export)

TEST(TraceTest, NestedSpansExportDeterministicChromeTrace) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });

  const int64_t outer = recorder.Begin("outer");
  now = 10;
  const int64_t inner = recorder.Begin("inner");
  now = 30;
  recorder.End(inner);
  now = 100;
  recorder.End(outer);

  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);

  EXPECT_EQ(recorder.ExportChromeTraceJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"outer\",\"cat\":\"o2sr\",\"ph\":\"X\",\"ts\":0,"
            "\"dur\":100,\"pid\":0,\"tid\":0},"
            "{\"name\":\"inner\",\"cat\":\"o2sr\",\"ph\":\"X\",\"ts\":10,"
            "\"dur\":20,\"pid\":0,\"tid\":0}]}");
}

TEST(TraceTest, StageMillisAggregatesByName) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  for (int i = 0; i < 3; ++i) {
    const int64_t h = recorder.Begin("stage");
    now += 2000;  // 2 ms each
    recorder.End(h);
  }
  const auto stages = recorder.StageMillis();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_DOUBLE_EQ(stages.at("stage"), 6.0);
}

TEST(TraceTest, OpenSpansAreClosedAtExportTime) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  recorder.Begin("open");
  now = 5000;
  EXPECT_DOUBLE_EQ(recorder.StageMillis().at("open"), 5.0);
  EXPECT_NE(recorder.ExportChromeTraceJson().find("\"dur\":5000"),
            std::string::npos);
}

TEST(TraceTest, ScopedTraceRecordsOnDestruction) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  {
    ScopedTrace scope("scoped", &recorder);
    now = 42;
  }
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "scoped");
  EXPECT_EQ(spans[0].dur_us, 42);
}

TEST(TraceTest, RecordingOffDropsSpans) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  recorder.SetRecording(false);
  { ScopedTrace scope("dropped", &recorder); }
  EXPECT_EQ(recorder.span_count(), 0u);
  recorder.SetRecording(true);
  { ScopedTrace scope("kept", &recorder); }
  EXPECT_EQ(recorder.span_count(), 1u);
}

TEST(TraceTest, CounterEventsExportAfterSpans) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  const int64_t h = recorder.Begin("span");
  now = 10;
  recorder.End(h);
  now = 20;
  recorder.RecordCounter("profile.op.matmul.dispatches", 42.0);

  const auto counters = recorder.CounterSnapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "profile.op.matmul.dispatches");
  EXPECT_EQ(counters[0].ts_us, 20);
  EXPECT_DOUBLE_EQ(counters[0].value, 42.0);

  const std::string json = recorder.ExportChromeTraceJson();
  const size_t span_pos = json.find("\"ph\":\"X\"");
  const size_t counter_pos = json.find("\"ph\":\"C\"");
  ASSERT_NE(span_pos, std::string::npos) << json;
  ASSERT_NE(counter_pos, std::string::npos) << json;
  EXPECT_LT(span_pos, counter_pos);
  EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos) << json;

  // The parser must accept our own export (the trace validation in ci.sh
  // depends on this).
  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  for (const JsonValue& event : events->items()) {
    EXPECT_NE(event.Find("name"), nullptr);
    EXPECT_NE(event.Find("ph"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
  }
}

TEST(TraceTest, RecordingOffDropsCountersAndClearResets) {
  int64_t now = 0;
  TraceRecorder recorder([&now] { return now; });
  recorder.SetRecording(false);
  recorder.RecordCounter("dropped", 1.0);
  EXPECT_TRUE(recorder.CounterSnapshot().empty());
  recorder.SetRecording(true);
  recorder.RecordCounter("kept", 2.0);
  EXPECT_EQ(recorder.CounterSnapshot().size(), 1u);
  recorder.Clear();
  EXPECT_TRUE(recorder.CounterSnapshot().empty());
  EXPECT_EQ(recorder.span_count(), 0u);
}

// ---------------------------------------------------------------------------
// Logger

struct CapturedLog {
  LogLevel level;
  std::string file;
  int line;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = MinLogLevel();
    SetLogSink([this](LogLevel level, const std::string& file, int line,
                      const std::string& message) {
      captured_.push_back({level, file, line, message});
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(saved_level_);
  }

  std::vector<CapturedLog> captured_;
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LogTest, LevelThresholdFilters) {
  SetMinLogLevel(LogLevel::kWarning);
  O2SR_LOG(DEBUG) << "debug";
  O2SR_LOG(INFO) << "info";
  O2SR_LOG(WARNING) << "warning";
  O2SR_LOG(ERROR) << "error";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].level, LogLevel::kWarning);
  EXPECT_EQ(captured_[0].message, "warning");
  EXPECT_EQ(captured_[1].level, LogLevel::kError);
}

TEST_F(LogTest, SuppressedStreamIsNotEvaluated) {
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "expensive";
  };
  O2SR_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0);
  O2SR_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, SinkReceivesBasenameAndLine) {
  SetMinLogLevel(LogLevel::kInfo);
  O2SR_LOG(INFO) << "here";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].file, "obs_test.cc");
  EXPECT_GT(captured_[0].line, 0);
}

TEST_F(LogTest, OffLevelEmitsNothing) {
  SetMinLogLevel(LogLevel::kOff);
  O2SR_LOG(ERROR) << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelTest, ParseAndNameRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kOff}) {
    const auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
}

}  // namespace
}  // namespace o2sr::obs
