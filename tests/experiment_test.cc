#include "eval/experiment.h"

#include <set>

#include <gtest/gtest.h>

#include "features/order_stats.h"

namespace o2sr::eval {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 4000.0;
  cfg.city_height_m = 4000.0;
  cfg.num_store_types = 10;
  cfg.num_stores = 200;
  cfg.num_couriers = 80;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 31;
  return cfg;
}

const sim::Dataset& Data() {
  static const sim::Dataset* data =
      new sim::Dataset(sim::GenerateDataset(TestConfig()));
  return *data;
}

TEST(BuildInteractionsTest, CoversAllNonZeroPairs) {
  const auto interactions = BuildInteractions(Data());
  const features::OrderStats stats(Data());
  size_t expected = 0;
  for (int s = 0; s < stats.num_regions(); ++s) {
    for (int a = 0; a < stats.num_types(); ++a) {
      if (stats.OrdersOfTypeInRegion(s, a) > 0) ++expected;
    }
  }
  EXPECT_EQ(interactions.size(), expected);
}

TEST(BuildInteractionsTest, TargetsNormalizedPerType) {
  const auto interactions = BuildInteractions(Data());
  std::map<int, double> max_target;
  for (const auto& it : interactions) {
    EXPECT_GT(it.target, 0.0);
    EXPECT_LE(it.target, 1.0);
    EXPECT_GT(it.orders, 0.0);
    max_target[it.type] = std::max(max_target[it.type], it.target);
  }
  // The best region of every type hits exactly 1.
  for (const auto& [type, mx] : max_target) {
    EXPECT_DOUBLE_EQ(mx, 1.0);
  }
}

TEST(BuildInteractionsTest, TargetProportionalToOrders) {
  const auto interactions = BuildInteractions(Data());
  // Within a type, target ratios equal order ratios.
  const auto& a = interactions[0];
  for (const auto& b : interactions) {
    if (b.type != a.type) continue;
    EXPECT_NEAR(a.target * b.orders, b.target * a.orders, 1e-9);
  }
}

TEST(SplitTest, FractionsAndDisjointness) {
  const auto interactions = BuildInteractions(Data());
  const Split split = SplitInteractions(Data(), interactions,
                                        {0.8, /*seed=*/5});
  EXPECT_EQ(split.train.size() + split.test.size(), interactions.size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) / interactions.size(),
              0.8, 0.01);
  std::set<std::pair<int, int>> train_pairs, test_pairs;
  for (const auto& it : split.train) train_pairs.insert({it.region, it.type});
  for (const auto& it : split.test) test_pairs.insert({it.region, it.type});
  for (const auto& p : test_pairs) {
    EXPECT_EQ(train_pairs.count(p), 0u);
  }
}

TEST(SplitTest, TrainOrdersExcludeTestPairs) {
  const auto interactions = BuildInteractions(Data());
  const Split split = SplitInteractions(Data(), interactions,
                                        {0.8, /*seed=*/5});
  std::set<std::pair<int, int>> test_pairs;
  for (const auto& it : split.test) test_pairs.insert({it.region, it.type});
  for (const sim::Order& o : split.train_orders) {
    EXPECT_EQ(test_pairs.count({o.store_region, o.type}), 0u);
  }
  // Order conservation: every order belongs to train or test pairs.
  size_t test_order_count = 0;
  for (const auto& it : split.test) {
    test_order_count += static_cast<size_t>(it.orders);
  }
  EXPECT_EQ(split.train_orders.size() + test_order_count,
            Data().orders.size());
}

TEST(SplitTest, DifferentSeedsGiveDifferentSplits) {
  const auto interactions = BuildInteractions(Data());
  const Split a = SplitInteractions(Data(), interactions, {0.8, /*seed=*/1});
  const Split b = SplitInteractions(Data(), interactions, {0.8, /*seed=*/2});
  ASSERT_EQ(a.test.size(), b.test.size());
  int differing = 0;
  for (size_t i = 0; i < a.test.size(); ++i) {
    if (a.test[i].region != b.test[i].region ||
        a.test[i].type != b.test[i].type) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(EvaluateTest, PerfectPredictionsScorePerfect) {
  const auto interactions = BuildInteractions(Data());
  const Split split = SplitInteractions(Data(), interactions,
                                        {0.8, /*seed=*/5});
  std::vector<double> perfect(split.test.size());
  for (size_t i = 0; i < split.test.size(); ++i) {
    perfect[i] = split.test[i].target;
  }
  EvalOptions opts;
  opts.min_candidates = 3;
  const EvalResult r = Evaluate(split.test, perfect, opts);
  ASSERT_GT(r.types_evaluated, 0);
  EXPECT_DOUBLE_EQ(r.ndcg.at(3), 1.0);
  EXPECT_DOUBLE_EQ(r.precision.at(3), 1.0);
  EXPECT_NEAR(r.rmse, 0.0, 1e-12);
}

TEST(EvaluateTest, MinCandidatesGatesTypes) {
  const auto interactions = BuildInteractions(Data());
  const Split split = SplitInteractions(Data(), interactions,
                                        {0.8, /*seed=*/5});
  std::vector<double> preds(split.test.size(), 0.5);
  EvalOptions loose;
  loose.min_candidates = 1;
  EvalOptions strict;
  strict.min_candidates = 10000;
  EXPECT_GT(Evaluate(split.test, preds, loose).types_evaluated, 0);
  EXPECT_EQ(Evaluate(split.test, preds, strict).types_evaluated, 0);
}

TEST(EvaluateTypeTest, SingleTypeOnly) {
  const auto interactions = BuildInteractions(Data());
  const Split split = SplitInteractions(Data(), interactions,
                                        {0.8, /*seed=*/5});
  std::vector<double> perfect(split.test.size());
  for (size_t i = 0; i < split.test.size(); ++i) {
    perfect[i] = split.test[i].target;
  }
  const EvalResult r = EvaluateType(split.test, perfect, 0);
  EXPECT_LE(r.types_evaluated, 1);
  if (r.types_evaluated == 1) {
    EXPECT_DOUBLE_EQ(r.ndcg.at(3), 1.0);
  }
}

TEST(EvaluateRegionsTest, FilterRestrictsPairs) {
  const auto interactions = BuildInteractions(Data());
  const Split split = SplitInteractions(Data(), interactions,
                                        {0.8, /*seed=*/5});
  std::vector<double> preds(split.test.size(), 0.5);
  std::vector<bool> none(Data().num_regions(), false);
  const EvalResult r = EvaluateRegions(split.test, preds, none);
  EXPECT_EQ(r.types_evaluated, 0);
  EXPECT_EQ(r.rmse, 0.0);
}

}  // namespace
}  // namespace o2sr::eval
