// Property-based sweeps of the simulator: structural invariants must hold
// for any seed and a range of configurations (TEST_P over seeds).

#include <algorithm>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "features/analysis.h"
#include "sim/dataset.h"

namespace o2sr::sim {
namespace {

class SimSeedPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SimConfig Config() const {
    SimConfig cfg;
    cfg.city_width_m = 4000.0;
    cfg.city_height_m = 4000.0;
    cfg.num_store_types = 10;
    cfg.num_stores = 180;
    cfg.num_couriers = 90;
    cfg.num_days = 3;
    cfg.peak_orders_per_region_slot = 4.0;
    cfg.seed = GetParam();
    return cfg;
  }
};

TEST_P(SimSeedPropertyTest, OrderTimestampsMonotone) {
  const Dataset data = GenerateDataset(Config());
  ASSERT_GT(data.orders.size(), 500u);
  for (const Order& o : data.orders) {
    EXPECT_LT(o.creation_min, o.acceptance_min);
    EXPECT_LT(o.acceptance_min, o.pickup_min);
    EXPECT_LT(o.pickup_min, o.delivery_min);
  }
}

TEST_P(SimSeedPropertyTest, OrdersReferenceValidEntities) {
  const Dataset data = GenerateDataset(Config());
  for (const Order& o : data.orders) {
    ASSERT_GE(o.store_id, 0);
    ASSERT_LT(o.store_id, static_cast<int>(data.stores.size()));
    ASSERT_GE(o.courier_id, 0);
    ASSERT_LT(o.courier_id, data.config.num_couriers);
    ASSERT_TRUE(data.city.grid.Valid(o.store_region));
    ASSERT_TRUE(data.city.grid.Valid(o.customer_region));
    ASSERT_GE(o.type, 0);
    ASSERT_LT(o.type, data.num_types());
  }
}

TEST_P(SimSeedPropertyTest, DistanceMatchesLocations) {
  const Dataset data = GenerateDataset(Config());
  for (size_t i = 0; i < data.orders.size(); i += 37) {
    const Order& o = data.orders[i];
    EXPECT_NEAR(o.distance_m,
                geo::EuclideanMeters(o.store_location, o.customer_location),
                1e-6);
  }
}

TEST_P(SimSeedPropertyTest, SupplyDemandRatioDipsAtRush) {
  const Dataset data = GenerateDataset(Config());
  const auto series = features::SupplyDemandBySlot(data);
  // Average the two rush slots vs the two off-peak afternoon/night slots.
  const double rush = (series[5].supply_demand_ratio +
                       series[9].supply_demand_ratio) / 2.0;
  const double off = (series[7].supply_demand_ratio +
                      series[10].supply_demand_ratio) / 2.0;
  EXPECT_LT(rush, off);
}

TEST_P(SimSeedPropertyTest, CourierAllocationCoversAllSlots) {
  const Dataset data = GenerateDataset(Config());
  ASSERT_EQ(data.courier_alloc_slot_region.size(),
            static_cast<size_t>(kSlotsPerDay));
  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    double total = 0.0;
    for (double v : data.courier_alloc_slot_region[slot]) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_GT(total, 0.0);
    EXPECT_LE(total, data.config.num_couriers + 1.0);
  }
}

TEST_P(SimSeedPropertyTest, SlotStatsConsistentWithOrders) {
  const Dataset data = GenerateDataset(Config());
  std::vector<int> counted(data.config.num_days * kSlotsPerDay, 0);
  for (const Order& o : data.orders) {
    ++counted[o.day * kSlotsPerDay + o.slot];
  }
  ASSERT_EQ(data.slot_stats.size(), counted.size());
  for (const SlotStats& s : data.slot_stats) {
    EXPECT_EQ(s.orders, counted[s.day * kSlotsPerDay + s.slot]);
    EXPECT_GT(s.active_couriers, 0);
  }
}

TEST_P(SimSeedPropertyTest, ScopeFactorsWithinConfiguredBounds) {
  const SimConfig cfg = Config();
  const Dataset data = GenerateDataset(cfg);
  for (double f : data.scope_factor_per_period) {
    EXPECT_GE(f, cfg.min_scope_factor - 1e-9);
    EXPECT_LE(f, cfg.max_scope_factor + 1e-9);
  }
}

TEST_P(SimSeedPropertyTest, DemandScalesWithConfig) {
  SimConfig low = Config();
  low.peak_orders_per_region_slot = 2.0;
  SimConfig high = Config();
  high.peak_orders_per_region_slot = 6.0;
  const Dataset a = GenerateDataset(low);
  const Dataset b = GenerateDataset(high);
  EXPECT_GT(b.orders.size(), a.orders.size() * 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSeedPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace o2sr::sim
