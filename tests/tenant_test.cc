// TenantRegistry: many named city snapshots served side by side, each with
// its own engine, config, metrics and failure domain. The isolation
// contract under test: one tenant's corrupt snapshot quarantines only that
// tenant, and a request for a city this process does not host fails with a
// typed NOT_FOUND — never a silent fallback to some other tenant's model.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "serve/tenant.h"

namespace o2sr::serve {
namespace {

using common::StatusCode;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFileRaw(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// score(region, type) = scale * (1 + region + 100 * type); scale is a
// restorable parameter so snapshot swaps observably change each tenant.
class ScaledStub : public core::SiteRecommender {
 public:
  explicit ScaledStub(int num_regions, float scale)
      : num_regions_(num_regions) {
    store_.CreateZeros("scaled.scale", 1, 1);
    store_.params()[0]->value.Fill(scale);
  }

  std::string Name() const override { return "ScaledStub"; }
  common::Status Train(const core::TrainContext&) override {
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    std::vector<double> out;
    out.reserve(pairs.size());
    for (const core::Interaction& it : pairs) {
      if (it.type < 0 || it.type >= 10) {
        return common::InvalidArgumentError("scaled stub: unknown type");
      }
      out.push_back(Score(scale(), it.region, it.type));
    }
    return out;
  }
  const nn::ParameterStore* parameter_store() const override {
    return &store_;
  }
  nn::ParameterStore* mutable_parameter_store() override { return &store_; }
  bool CanScoreRegion(int region) const override {
    return region >= 0 && region < num_regions_;
  }

  double scale() const {
    return static_cast<double>(store_.params()[0]->value.at(0, 0));
  }
  static double Score(double scale, int region, int type) {
    return scale * (1.0 + region + 100.0 * type);
  }

 private:
  int num_regions_;
  nn::ParameterStore store_;
};

constexpr uint64_t kConfigHash = 42;

std::string ExportScaled(const char* name, float scale) {
  ScaledStub source(10, scale);
  SnapshotMeta meta;
  meta.model_name = "ScaledStub";
  meta.config_hash = kConfigHash;
  meta.num_regions = 10;
  meta.num_types = 10;
  const std::string path = TempPath(name);
  EXPECT_TRUE(ExportSnapshot(path, meta, source).ok());
  return path;
}

RankRequest Request(int type, std::vector<int> candidates, int k) {
  RankRequest request;
  request.type = type;
  request.candidates = std::move(candidates);
  request.k = k;
  return request;
}

std::unique_ptr<core::SiteRecommender> MakeModel(float scale = 1.0f) {
  return std::make_unique<ScaledStub>(10, scale);
}

class TenantTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::FaultInjector::ResetGlobalForTest("");
  }
};

// --- Config parsing ----------------------------------------------------

TEST_F(TenantTest, ParseTenantConfigReadsEveryKnob) {
  const auto config = ParseTenantConfig(
      "# latency-sensitive metro\n"
      "deadline_ms = 12.5\n"
      "max_inflight = 64\n"
      "cache_capacity = 32768\n"
      "cache_shards = 8\n"
      "shards = 4\n"
      "slo_ms = 20\n"
      "slo_target = 0.995\n"
      "health_recovery_streak = 16\n");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_DOUBLE_EQ(config->deadline_ms, 12.5);
  EXPECT_EQ(config->max_inflight, 64);
  EXPECT_EQ(config->cache_capacity, 32768);
  EXPECT_EQ(config->cache_shards, 8);
  EXPECT_EQ(config->shards, 4);
  EXPECT_DOUBLE_EQ(config->slo_ms, 20.0);
  EXPECT_DOUBLE_EQ(config->slo_target, 0.995);
  EXPECT_EQ(config->health_recovery_streak, 16);

  ServingOptions options;
  config->ApplyTo(&options);
  EXPECT_DOUBLE_EQ(options.default_deadline_ms, 12.5);
  EXPECT_EQ(options.max_inflight, 64);
  EXPECT_EQ(options.cache_capacity, 32768);
  EXPECT_EQ(options.num_shards, 4);
}

TEST_F(TenantTest, UnsetKeysDoNotOverlayTheBaseOptions) {
  const auto config = ParseTenantConfig("deadline_ms = 7\n");
  ASSERT_TRUE(config.ok());
  ServingOptions options;
  options.max_inflight = 99;
  options.cache_capacity = 123;
  config->ApplyTo(&options);
  EXPECT_DOUBLE_EQ(options.default_deadline_ms, 7.0);
  EXPECT_EQ(options.max_inflight, 99);    // untouched
  EXPECT_EQ(options.cache_capacity, 123);  // untouched
}

TEST_F(TenantTest, UnknownKeyIsALoudError) {
  const auto config = ParseTenantConfig("deadine_ms = 12\n");  // typo
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(config.status().message().find("unknown key"), std::string::npos);
}

TEST_F(TenantTest, UnparsableValueIsAnError) {
  const auto config = ParseTenantConfig("deadline_ms = fast\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TenantTest, SectionedFileParsesPerTenant) {
  const auto parsed = ParseTenantConfigFile(
      "# two metros\n"
      "[beijing]\n"
      "deadline_ms = 12\n"
      "shards = 4\n"
      "\n"
      "[tianjin]\n"
      "deadline_ms = 30\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->at("beijing").deadline_ms, 12.0);
  EXPECT_EQ(parsed->at("beijing").shards, 4);
  EXPECT_DOUBLE_EQ(parsed->at("tianjin").deadline_ms, 30.0);
  EXPECT_EQ(parsed->at("tianjin").shards, -1);
}

TEST_F(TenantTest, SectionedFileRejectsMalformedInput) {
  EXPECT_EQ(ParseTenantConfigFile("deadline_ms = 12\n").status().code(),
            StatusCode::kInvalidArgument);  // key before any section
  EXPECT_EQ(ParseTenantConfigFile("[beijing\ndeadline_ms = 1\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // unclosed header
  EXPECT_EQ(
      ParseTenantConfigFile("[a]\nx_total = 1\n").status().code(),
      StatusCode::kInvalidArgument);  // unknown key inside a section
  EXPECT_EQ(ParseTenantConfigFile("[a]\n[a]\n").status().code(),
            StatusCode::kInvalidArgument);  // duplicate section
}

TEST_F(TenantTest, LoadTenantConfigFileRoundTripsAndFlagsMissingFiles) {
  const std::string path = TempPath("tenants.conf");
  WriteFileRaw(path, "[shanghai]\ncache_capacity = 1024\n");
  const auto parsed = LoadTenantConfigFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->at("shanghai").cache_capacity, 1024);

  EXPECT_EQ(LoadTenantConfigFile(TempPath("no_such.conf")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(TenantTest, MetricsPrefixSanitizesTenantNames) {
  EXPECT_EQ(TenantRegistry::MetricsPrefixFor("beijing"),
            "serve.tenant.beijing");
  EXPECT_EQ(TenantRegistry::MetricsPrefixFor("new york!"),
            "serve.tenant.new_york_");
  EXPECT_EQ(TenantRegistry::MetricsPrefixFor(""), "serve.tenant.unnamed");
}

// --- Registry lifecycle ------------------------------------------------

TEST_F(TenantTest, RegisterGetAndTypedUnknownTenantError) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("beijing", MakeModel()).ok());
  ASSERT_TRUE(registry.Register("tianjin", MakeModel()).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.TenantNames(),
            (std::vector<std::string>{"beijing", "tianjin"}));

  const auto tenant = registry.Get("beijing");
  ASSERT_TRUE(tenant.ok());
  const auto response = (*tenant)->engine->Rank(Request(1, {0, 1, 2}, 3));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->sites[0].score, ScaledStub::Score(1.0, 2, 1));

  // Unknown city: a typed refusal, never a redirect to another tenant.
  const auto unknown = registry.Get("shenzhen");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("refused"), std::string::npos);
}

TEST_F(TenantTest, RegisterRejectsBadArgumentsAndDuplicates) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Register("", MakeModel()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("beijing", nullptr).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.Register("beijing", MakeModel()).ok());
  EXPECT_EQ(registry.Register("beijing", MakeModel()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.size(), 1u);
}

TEST_F(TenantTest, PerTenantConfigShapesEachEngineIndependently) {
  TenantConfig tight;
  tight.deadline_ms = -1.0;
  tight.max_inflight = 1;
  tight.shards = 2;
  ServingOptions tight_options;
  tight.ApplyTo(&tight_options);

  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("tight", MakeModel(), tight_options).ok());
  ASSERT_TRUE(registry.Register("roomy", MakeModel()).ok());

  const auto tight_tenant = registry.Get("tight").value();
  EXPECT_EQ(tight_tenant->engine->num_shards(), 2);
  const auto response = tight_tenant->engine->Rank(Request(1, {0, 1}, 2));
  EXPECT_TRUE(response.ok()) << response.status();
}

TEST_F(TenantTest, PerTenantMetricsNeverAlias) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("metrics-a", MakeModel()).ok());
  ASSERT_TRUE(registry.Register("metrics-b", MakeModel()).ok());
  auto& metrics = obs::MetricsRegistry::Global();
  const uint64_t a_before =
      metrics.GetCounter("serve.tenant.metrics-a.requests")->value();
  const uint64_t b_before =
      metrics.GetCounter("serve.tenant.metrics-b.requests")->value();

  const auto tenant = registry.Get("metrics-a").value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tenant->engine->Rank(Request(1, {0, 1, 2}, 3)).ok());
  }
  EXPECT_EQ(metrics.GetCounter("serve.tenant.metrics-a.requests")->value(),
            a_before + 3);
  EXPECT_EQ(metrics.GetCounter("serve.tenant.metrics-b.requests")->value(),
            b_before);  // the neighbour's traffic is invisible here
}

TEST_F(TenantTest, RemoveDrainsToLameDuckAndFreesTheName) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("ephemeral", MakeModel()).ok());
  const auto pin = registry.Get("ephemeral").value();

  ASSERT_TRUE(registry.Remove("ephemeral").ok());
  EXPECT_EQ(registry.Get("ephemeral").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Remove("ephemeral").code(), StatusCode::kNotFound);

  // The pinned engine is alive but draining: every new request is shed.
  EXPECT_EQ(pin->engine->health(), ServeHealth::kLameDuck);
  EXPECT_EQ(pin->engine->Rank(Request(1, {0}, 1)).status().code(),
            StatusCode::kResourceExhausted);

  // The name is free for a replacement tenant.
  ASSERT_TRUE(registry.Register("ephemeral", MakeModel(2.0f)).ok());
  const auto replacement = registry.Get("ephemeral").value();
  const auto response = replacement->engine->Rank(Request(1, {2}, 1));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->sites[0].score, ScaledStub::Score(2.0, 2, 1));
}

// --- Swap + failure isolation ------------------------------------------

TEST_F(TenantTest, SwapPromotesOneTenantOnly) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("swap-a", MakeModel()).ok());
  ASSERT_TRUE(registry.Register("swap-b", MakeModel()).ok());

  const std::string path = ExportScaled("tenant_swap.snap", 3.0f);
  const auto report =
      registry.Swap("swap-a", path, MakeModel(0.0f), kConfigHash);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->promoted);
  EXPECT_EQ(report->epoch, 2u);

  const auto a = registry.Get("swap-a").value();
  const auto b = registry.Get("swap-b").value();
  EXPECT_EQ(a->engine->Rank(Request(1, {2}, 1))->sites[0].score,
            ScaledStub::Score(3.0, 2, 1));
  EXPECT_EQ(b->engine->epoch(), 1u);
  EXPECT_EQ(b->engine->Rank(Request(1, {2}, 1))->sites[0].score,
            ScaledStub::Score(1.0, 2, 1));

  EXPECT_EQ(registry.Swap("nowhere", path, MakeModel(0.0f), kConfigHash)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(TenantTest, SnapshotFaultQuarantinesOnlyTheVictimTenant) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("victim", MakeModel()).ok());
  ASSERT_TRUE(registry.Register("bystander", MakeModel()).ok());

  // Every snapshot read fails: the victim's swap is rejected and its
  // snapshot quarantined.
  common::FaultInjector::ResetGlobalForTest("snapshot.read=error:1.0");
  const std::string victim_path = ExportScaled("tenant_victim.snap", 3.0f);
  const auto report =
      registry.Swap("victim", victim_path, MakeModel(0.0f), kConfigHash);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->promoted);
  ASSERT_FALSE(report->quarantine_path.empty());
  EXPECT_TRUE(FileExists(report->quarantine_path));
  EXPECT_FALSE(FileExists(victim_path));  // moved aside, not left in place

  // The victim keeps serving its prior epoch, fresh and healthy...
  const auto victim = registry.Get("victim").value();
  EXPECT_EQ(victim->engine->epoch(), 1u);
  const auto served = victim->engine->Rank(Request(1, {2}, 1));
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(served->tier, ServeTier::kFresh);
  EXPECT_EQ(served->sites[0].score, ScaledStub::Score(1.0, 2, 1));
  EXPECT_EQ(victim->engine->health(), ServeHealth::kServing);

  // ...and the bystander's serving path never noticed (its Rank path does
  // not read snapshots, so the fault recipe cannot touch it).
  const auto bystander = registry.Get("bystander").value();
  const auto untouched = bystander->engine->Rank(Request(1, {2}, 1));
  ASSERT_TRUE(untouched.ok()) << untouched.status();
  EXPECT_EQ(untouched->tier, ServeTier::kFresh);
  EXPECT_EQ(bystander->engine->health(), ServeHealth::kServing);

  // Once the fault clears, the bystander promotes normally: quarantine was
  // a per-tenant event, not a registry-wide one.
  common::FaultInjector::ResetGlobalForTest("");
  const std::string bystander_path =
      ExportScaled("tenant_bystander.snap", 5.0f);
  const auto promoted =
      registry.Swap("bystander", bystander_path, MakeModel(0.0f), kConfigHash);
  ASSERT_TRUE(promoted.ok());
  EXPECT_TRUE(promoted->promoted);
  EXPECT_EQ(bystander->engine->epoch(), 2u);
  EXPECT_EQ(registry.Get("victim").value()->engine->epoch(), 1u);
}

// --- Concurrency -------------------------------------------------------

TEST_F(TenantTest, LookupsRaceRegistrationsAndRemovalsSafely) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.Register("stable", MakeModel()).ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        const auto tenant = registry.Get("stable");
        ASSERT_TRUE(tenant.ok());
        const auto response =
            (*tenant)->engine->Rank(Request(i % 10, {0, 1, 2}, 3));
        ASSERT_TRUE(response.ok()) << response.status();
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      const std::string name = "churn-" + std::to_string(i % 5);
      if (registry.Register(name, MakeModel()).ok()) {
        // Half the time query it before tearing it down again.
        const auto tenant = registry.Get(name);
        if (tenant.ok() && i % 2 == 0) {
          (void)(*tenant)->engine->Rank(Request(1, {0, 1}, 2));
        }
        (void)registry.Remove(name);
      }
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_TRUE(registry.Get("stable").ok());
  EXPECT_EQ(registry.Get("stable").value()->engine->shed_count(), 0u);
}

}  // namespace
}  // namespace o2sr::serve
