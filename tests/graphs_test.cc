#include <set>

#include <gtest/gtest.h>

#include "graphs/geo_graph.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "sim/dataset.h"

namespace o2sr::graphs {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 5000.0;
  cfg.city_height_m = 5000.0;
  cfg.num_store_types = 14;
  cfg.num_stores = 220;
  cfg.num_couriers = 110;
  cfg.num_days = 4;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 23;
  return cfg;
}

const sim::Dataset& Data() {
  static const sim::Dataset* data =
      new sim::Dataset(sim::GenerateDataset(TestConfig()));
  return *data;
}

const features::OrderStats& Stats() {
  static const features::OrderStats* stats = new features::OrderStats(Data());
  return *stats;
}

// ---- GeoGraph ---------------------------------------------------------------

TEST(GeoGraphTest, EdgesRespectThreshold) {
  const GeoGraph g(Data().city.grid, 800.0);
  for (int r = 0; r < g.num_regions(); ++r) {
    ASSERT_EQ(g.Neighbors(r).size(), g.Distances(r).size());
    for (size_t i = 0; i < g.Neighbors(r).size(); ++i) {
      EXPECT_LE(g.Distances(r)[i], 800.0);
      EXPECT_NE(g.Neighbors(r)[i], r);
    }
  }
}

TEST(GeoGraphTest, InteriorRegionHasEightNeighborsAt800m) {
  const GeoGraph g(Data().city.grid, 800.0);
  const int center = Data().city.grid.RegionOf({2500.0, 2500.0});
  EXPECT_EQ(g.Neighbors(center).size(), 8u);
}

TEST(GeoGraphTest, CornerRegionHasThreeNeighbors) {
  const GeoGraph g(Data().city.grid, 800.0);
  EXPECT_EQ(g.Neighbors(0).size(), 3u);
}

TEST(GeoGraphTest, SymmetricEdges) {
  const GeoGraph g(Data().city.grid, 800.0);
  for (int r = 0; r < g.num_regions(); r += 3) {
    for (int n : g.Neighbors(r)) {
      const auto& back = g.Neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), r), back.end());
    }
  }
}

TEST(GeoGraphTest, LargerThresholdMoreEdges) {
  const GeoGraph g800(Data().city.grid, 800.0);
  const GeoGraph g1200(Data().city.grid, 1200.0);
  EXPECT_GT(g1200.NumEdges(), g800.NumEdges());
}

// ---- MobilityMultiGraph ------------------------------------------------------

TEST(MobilityGraphTest, EdgesMatchPairStats) {
  const MobilityMultiGraph g(Stats());
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    EXPECT_EQ(g.EdgesInPeriod(p).size(), Stats().PairsInPeriod(p).size());
    for (const MobilityEdge& e : g.EdgesInPeriod(p)) {
      const features::PairStats* pair = Stats().Pair(p, e.src, e.dst);
      ASSERT_NE(pair, nullptr);
      EXPECT_EQ(e.transactions, pair->transactions);
      EXPECT_DOUBLE_EQ(e.delivery_minutes, pair->mean_delivery_minutes());
    }
  }
}

TEST(MobilityGraphTest, MinTransactionsFilters) {
  const MobilityMultiGraph all(Stats(), 1);
  const MobilityMultiGraph filtered(Stats(), 3);
  EXPECT_LT(filtered.TotalEdges(), all.TotalEdges());
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (const MobilityEdge& e : filtered.EdgesInPeriod(p)) {
      EXPECT_GE(e.transactions, 3);
    }
  }
}

TEST(MobilityGraphTest, EdgesAreSortedAndMaxTracked) {
  const MobilityMultiGraph g(Stats());
  double max_dt = 0.0;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    const auto& edges = g.EdgesInPeriod(p);
    for (size_t i = 1; i < edges.size(); ++i) {
      const bool ordered =
          edges[i - 1].src < edges[i].src ||
          (edges[i - 1].src == edges[i].src &&
           edges[i - 1].dst < edges[i].dst);
      EXPECT_TRUE(ordered);
    }
    for (const auto& e : edges) max_dt = std::max(e.delivery_minutes, max_dt);
  }
  EXPECT_DOUBLE_EQ(g.max_delivery_minutes(), max_dt);
}

// ---- HeteroMultiGraph --------------------------------------------------------

TEST(HeteroGraphTest, NodeSetsAreConsistent) {
  const HeteroMultiGraph g(Data(), Stats());
  EXPECT_GT(g.num_store_nodes(), 0);
  EXPECT_GT(g.num_customer_nodes(), 0);
  EXPECT_EQ(g.num_types(), Data().num_types());
  // Every store's region is a store node.
  for (const sim::Store& s : Data().stores) {
    EXPECT_GE(g.StoreNodeOfRegion(s.region), 0);
  }
  // Mappings round-trip.
  for (int i = 0; i < g.num_store_nodes(); ++i) {
    EXPECT_EQ(g.StoreNodeOfRegion(g.store_regions()[i]), i);
  }
  for (int i = 0; i < g.num_customer_nodes(); ++i) {
    EXPECT_EQ(g.CustomerNodeOfRegion(g.customer_regions()[i]), i);
  }
}

TEST(HeteroGraphTest, SaEdgesMatchStoreInventory) {
  const HeteroMultiGraph g(Data(), Stats());
  std::set<std::pair<int, int>> expected;
  for (const sim::Store& s : Data().stores) {
    expected.insert({g.StoreNodeOfRegion(s.region), s.type});
  }
  std::set<std::pair<int, int>> got;
  for (const SaEdge& e : g.sa_edges()) {
    got.insert({e.s, e.a});
    EXPECT_GE(e.competitiveness, 0.0f);
    EXPECT_LE(e.competitiveness, 1.0f);
    EXPECT_GE(e.orders_norm, 0.0f);
    EXPECT_LE(e.orders_norm, 1.0f);
  }
  EXPECT_EQ(got, expected);
}

TEST(HeteroGraphTest, SuEdgeAttributesInRange) {
  const HeteroMultiGraph g(Data(), Stats());
  size_t total = 0;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (const SuEdge& e : g.Subgraph(p).su_edges) {
      EXPECT_GE(e.s, 0);
      EXPECT_LT(e.s, g.num_store_nodes());
      EXPECT_GE(e.u, 0);
      EXPECT_LT(e.u, g.num_customer_nodes());
      EXPECT_GE(e.distance_norm, 0.0f);
      EXPECT_LE(e.distance_norm, 1.0f);
      EXPECT_GE(e.transactions_norm, 0.0f);
      EXPECT_LE(e.transactions_norm, 1.0f);
      EXPECT_EQ(g.StoreNodeOfRegion(e.s_region), e.s);
      EXPECT_EQ(g.CustomerNodeOfRegion(e.u_region), e.u);
      ++total;
    }
  }
  EXPECT_GT(total, 100u);
}

TEST(HeteroGraphTest, UaEdgesMatchCustomerOrders) {
  const HeteroMultiGraph g(Data(), Stats());
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    size_t expected = 0;
    for (int u = 0; u < Stats().num_regions(); ++u) {
      for (int a = 0; a < Stats().num_types(); ++a) {
        if (Stats().CustomerOrders(p, u, a) > 0.0) ++expected;
      }
    }
    EXPECT_EQ(g.Subgraph(p).ua_edges.size(), expected);
  }
}

TEST(HeteroGraphTest, CapacityAwareScopeChangesEdgesAcrossPeriods) {
  const HeteroMultiGraph g(Data(), Stats());
  // The multi-graph structure must differ across periods (different S-U
  // edge sets), otherwise the time dimension is meaningless.
  const auto& noon = g.Subgraph(static_cast<int>(sim::Period::kNoonRush));
  const auto& night = g.Subgraph(static_cast<int>(sim::Period::kNight));
  EXPECT_NE(noon.su_edges.size(), night.su_edges.size());
}

TEST(HeteroGraphTest, WithoutCapacityScopeIsPeriodUniform) {
  HeteroGraphOptions opts;
  opts.capacity_aware_scope = false;
  opts.order_ratio_threshold = 0.0;
  const HeteroMultiGraph g(Data(), Stats(), opts);
  // With a fixed radius and no ratio filter, S-U edges are the same set in
  // every period.
  std::set<std::pair<int, int>> first;
  for (const SuEdge& e : g.Subgraph(0).su_edges) first.insert({e.s, e.u});
  for (int p = 1; p < sim::kNumPeriods; ++p) {
    std::set<std::pair<int, int>> other;
    for (const SuEdge& e : g.Subgraph(p).su_edges) other.insert({e.s, e.u});
    EXPECT_EQ(other, first);
  }
}

TEST(HeteroGraphTest, WithoutCustomerEdgesOnlySaRemains) {
  HeteroGraphOptions opts;
  opts.include_customer_edges = false;
  const HeteroMultiGraph g(Data(), Stats(), opts);
  EXPECT_FALSE(g.sa_edges().empty());
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    EXPECT_TRUE(g.Subgraph(p).su_edges.empty());
    EXPECT_TRUE(g.Subgraph(p).ua_edges.empty());
  }
}

TEST(HeteroGraphTest, NodeFeatureShapes) {
  const HeteroMultiGraph g(Data(), Stats());
  EXPECT_EQ(g.store_features().rows(), g.num_store_nodes());
  EXPECT_EQ(g.customer_features().rows(), g.num_customer_nodes());
  EXPECT_EQ(g.store_features().cols(),
            features::RegionFeatureExtractor::kDim);
}

TEST(HeteroGraphTest, HigherRatioThresholdPrunesEdges) {
  HeteroGraphOptions loose;
  loose.order_ratio_threshold = 0.0;
  HeteroGraphOptions strict;
  strict.order_ratio_threshold = 0.3;
  const HeteroMultiGraph g_loose(Data(), Stats(), loose);
  const HeteroMultiGraph g_strict(Data(), Stats(), strict);
  size_t loose_edges = 0, strict_edges = 0;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    loose_edges += g_loose.Subgraph(p).su_edges.size();
    strict_edges += g_strict.Subgraph(p).su_edges.size();
  }
  EXPECT_GT(loose_edges, strict_edges);
}

}  // namespace
}  // namespace o2sr::graphs
