#include "pipeline/pipeline.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "pipeline/journal.h"
#include "serve/engine.h"
#include "serve/tenant.h"

namespace o2sr::pipeline {
namespace {

using common::StatusCode;

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

// A pipeline small enough that a full multi-cycle run plus the
// kill-at-every-boundary replay stays test-sized.
PipelineOptions TinyPipeline(const std::string& work_dir) {
  PipelineOptions options;
  options.world.city_width_m = 2000.0;
  options.world.city_height_m = 2000.0;
  options.world.num_store_types = 5;
  options.world.num_stores = 100;
  options.world.num_couriers = 50;
  options.world.num_days = 1;
  options.world.seed = 33;
  options.model.rec.embedding_dim = 8;
  options.model.rec.node_heads = 2;
  options.model.epochs = 3;
  options.model.seed = 4;
  options.drift.store_close_rate = 0.10;
  options.drift.store_open_rate = 0.12;
  options.drift.popularity_walk_sigma = 0.35;
  options.drift.rush_shift_slots = 0.5;
  options.drift.seed = 21;
  options.cycles = 2;
  options.work_dir = work_dir;
  options.serve_queries = 4;
  options.canary_queries = 2;
  options.retry.initial_backoff_ms = 0.5;
  options.retry.max_backoff_ms = 2.0;
  return options;
}

class PipelineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::FaultInjector::ResetGlobalForTest("");
  }
};

// --- Journal ------------------------------------------------------------

TEST(PipelineJournalTest, RoundTripsEveryField) {
  PipelineJournal journal(FreshDir("journal_rt") + "/journal.bin");
  std::filesystem::create_directories(
      std::filesystem::path(journal.path()).parent_path());
  EXPECT_FALSE(journal.Exists());

  PipelineJournalState state;
  state.config_hash = 0xdeadbeefcafe1234ull;
  state.cycle = 3;
  state.stage = PipelineStage::kCanary;
  state.completed_cycles = 2;
  state.last_snapshot = "work/snapshot_cycle3.snap";
  state.active_snapshot = "work/snapshot_cycle2.snap";
  state.active_cycle = 2;
  state.swap_fallbacks = 1;
  state.transitions = 19;
  ASSERT_TRUE(journal.Write(state).ok());
  EXPECT_TRUE(journal.Exists());

  const auto loaded = journal.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->config_hash, state.config_hash);
  EXPECT_EQ(loaded->cycle, state.cycle);
  EXPECT_EQ(loaded->stage, state.stage);
  EXPECT_EQ(loaded->completed_cycles, state.completed_cycles);
  EXPECT_EQ(loaded->last_snapshot, state.last_snapshot);
  EXPECT_EQ(loaded->active_snapshot, state.active_snapshot);
  EXPECT_EQ(loaded->active_cycle, state.active_cycle);
  EXPECT_EQ(loaded->swap_fallbacks, state.swap_fallbacks);
  EXPECT_EQ(loaded->transitions, state.transitions);
}

TEST(PipelineJournalTest, MissingJournalIsNotFound) {
  PipelineJournal journal(FreshDir("journal_missing") + "/journal.bin");
  EXPECT_FALSE(journal.Exists());
  EXPECT_EQ(journal.Load().status().code(), StatusCode::kNotFound);
}

TEST(PipelineJournalTest, CorruptJournalIsDataLoss) {
  const std::string dir = FreshDir("journal_corrupt");
  std::filesystem::create_directories(dir);
  PipelineJournal journal(dir + "/journal.bin");
  ASSERT_TRUE(journal.Write(PipelineJournalState()).ok());

  std::string bytes = ReadFileBytes(journal.path());
  bytes[bytes.size() / 2] ^= 0x41;
  WriteFileBytes(journal.path(), bytes);
  EXPECT_EQ(journal.Load().status().code(), StatusCode::kDataLoss);

  // Truncation is caught the same way.
  WriteFileBytes(journal.path(), bytes.substr(0, bytes.size() / 3));
  EXPECT_EQ(journal.Load().status().code(), StatusCode::kDataLoss);
}

TEST(PipelineJournalTest, StageNamesCoverTheMachine) {
  EXPECT_STREQ(PipelineStageName(PipelineStage::kTrain), "TRAIN");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kExport), "EXPORT");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kCanary), "CANARY");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kSwap), "SWAP");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kServe), "SERVE");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kDrift), "DRIFT");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kRetrain), "RETRAIN");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kDone), "DONE");
}

TEST_F(PipelineTest, JournalWriteFaultSiteFiresBeforeThePublish) {
  const std::string dir = FreshDir("journal_fault");
  std::filesystem::create_directories(dir);
  PipelineJournal journal(dir + "/journal.bin");
  common::FaultInjector::ResetGlobalForTest("journal.write=error:1.0");
  const auto status = journal.Write(PipelineJournalState());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(journal.Exists()) << "failed write must not publish a file";
  common::FaultInjector::ResetGlobalForTest("");
  EXPECT_TRUE(journal.Write(PipelineJournalState()).ok());
}

// --- Uninterrupted run --------------------------------------------------

TEST_F(PipelineTest, RunsAllCyclesToDone) {
  ContinualPipeline pipeline(TinyPipeline(FreshDir("pipe_clean")));
  const auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->resumed);
  EXPECT_FALSE(report->stopped_early);
  EXPECT_EQ(report->cycles_completed, 2);
  EXPECT_EQ(report->swap_fallbacks, 0);
  EXPECT_GT(report->served, 0);
  // 2 cycles walk the machine through 11 journaled transitions.
  EXPECT_EQ(report->transitions, 11);
  EXPECT_NE(report->active_snapshot.find("snapshot_cycle1.snap"),
            std::string::npos);
  ASSERT_NE(pipeline.engine(), nullptr);
  EXPECT_EQ(pipeline.engine()->health(), serve::ServeHealth::kServing);

  // Every SERVE stage appends one kSlo event whose note is the engine's
  // SLO snapshot (one per cycle here), and a clean run has no health
  // transitions to report.
  int slo_events = 0;
  for (const obs::PipelineEvent& event : report->events) {
    if (event.kind == obs::PipelineEventKind::kHealth) {
      ADD_FAILURE() << "unexpected health transition: " << event.note;
    }
    if (event.kind != obs::PipelineEventKind::kSlo) continue;
    ++slo_events;
    EXPECT_EQ(event.stage, "SERVE");
    EXPECT_GE(event.value, 0.0);  // burn rate
    const auto snapshot = obs::ParseJson(event.note);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status() << "\n" << event.note;
    EXPECT_GT(snapshot->NumberOr("requests", 0.0), 0.0);
    EXPECT_DOUBLE_EQ(snapshot->NumberOr("shed", -1.0), 0.0);
  }
  EXPECT_EQ(slo_events, 2);

  // Running again on a DONE journal is a no-op resume.
  ContinualPipeline again(TinyPipeline(pipeline.options().work_dir));
  const auto rerun = again.Run();
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_TRUE(rerun->resumed);
  EXPECT_EQ(rerun->start_stage, PipelineStage::kDone);
  EXPECT_EQ(rerun->cycles_completed, 2);
  EXPECT_EQ(rerun->transitions, 11);
}

// --- Crash-resume at every stage boundary -------------------------------

// The acceptance gate of DESIGN.md §11: kill the supervisor at EVERY stage
// boundary (max_transitions=1 journals the transition, then stops — exactly
// a crash after the journal write), resume from the journal each time, and
// demand the pipeline converge to byte-identical artifacts.
TEST_F(PipelineTest, KillAtEveryBoundaryAndResumeIsBitIdentical) {
  // Reference: one uninterrupted run.
  const std::string ref_dir = FreshDir("pipe_ref");
  {
    ContinualPipeline pipeline(TinyPipeline(ref_dir));
    const auto report = pipeline.Run();
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->cycles_completed, 2);
  }

  // Interrupted: a fresh supervisor process per transition.
  const std::string killed_dir = FreshDir("pipe_killed");
  PipelineOptions options = TinyPipeline(killed_dir);
  options.max_transitions = 1;
  int runs = 0;
  bool done = false;
  int resumes = 0;
  while (!done) {
    ASSERT_LT(++runs, 40) << "pipeline failed to converge to DONE";
    ContinualPipeline pipeline(options);
    const auto report = pipeline.Run();
    ASSERT_TRUE(report.ok()) << "run " << runs << ": " << report.status();
    if (runs > 1) {
      EXPECT_TRUE(report->resumed) << "run " << runs;
      ++resumes;
    }
    done = !report->stopped_early;
    if (done) {
      EXPECT_EQ(report->cycles_completed, 2);
      EXPECT_NE(report->active_snapshot.find("snapshot_cycle1.snap"),
                std::string::npos);
    }
  }
  // 11 transitions, one per run, plus nothing else: every boundary was a
  // separate crash+resume.
  EXPECT_EQ(runs, 11);
  EXPECT_EQ(resumes, 10);

  // Byte-identical artifacts: every promoted snapshot matches the
  // uninterrupted run's exactly.
  for (const char* snap :
       {"/snapshot_cycle0.snap", "/snapshot_cycle1.snap"}) {
    const std::string ref_bytes = ReadFileBytes(ref_dir + snap);
    const std::string killed_bytes = ReadFileBytes(killed_dir + snap);
    ASSERT_FALSE(ref_bytes.empty()) << snap;
    EXPECT_EQ(ref_bytes, killed_bytes)
        << snap << " diverged across crash-resume";
  }

  // And the final journal agrees on the lifetime story.
  const auto ref_state = PipelineJournal(ref_dir + "/journal.bin").Load();
  const auto killed_state =
      PipelineJournal(killed_dir + "/journal.bin").Load();
  ASSERT_TRUE(ref_state.ok() && killed_state.ok());
  EXPECT_EQ(killed_state->stage, PipelineStage::kDone);
  EXPECT_EQ(killed_state->transitions, ref_state->transitions);
  EXPECT_EQ(killed_state->completed_cycles, ref_state->completed_cycles);
  // Same promoted artifact (paths differ only by work dir).
  EXPECT_EQ(
      std::filesystem::path(killed_state->active_snapshot).filename(),
      std::filesystem::path(ref_state->active_snapshot).filename());
}

// --- Journal trust ------------------------------------------------------

TEST_F(PipelineTest, ResumeRefusesAJournalFromAnotherConfiguration) {
  const std::string dir = FreshDir("pipe_confmix");
  PipelineOptions options = TinyPipeline(dir);
  options.max_transitions = 1;
  {
    ContinualPipeline pipeline(options);
    ASSERT_TRUE(pipeline.Run().ok());
  }
  PipelineOptions other = options;
  other.model.seed = options.model.seed + 1;
  ContinualPipeline pipeline(other);
  const auto report = pipeline.Run();
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, CorruptJournalIsQuarantinedAndThePipelineStartsFresh) {
  const std::string dir = FreshDir("pipe_corrupt");
  PipelineOptions options = TinyPipeline(dir);
  options.max_transitions = 2;
  {
    ContinualPipeline pipeline(options);
    ASSERT_TRUE(pipeline.Run().ok());
  }
  const std::string journal_path = dir + "/journal.bin";
  std::string bytes = ReadFileBytes(journal_path);
  bytes[bytes.size() - 5] ^= 0x13;  // land inside the checksum/payload
  WriteFileBytes(journal_path, bytes);

  ContinualPipeline pipeline(options);
  const auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  // Not trusted, so not resumed — but not destroyed either.
  EXPECT_FALSE(report->resumed);
  EXPECT_TRUE(std::filesystem::exists(journal_path + ".corrupt"));
}

// --- Chaos --------------------------------------------------------------

TEST_F(PipelineTest, RidesOutTransientJournalAndCheckpointFaults) {
  PipelineOptions options = TinyPipeline(FreshDir("pipe_chaos"));
  options.retry.max_attempts = 8;
  common::FaultInjector::ResetGlobalForTest(
      "seed=13,journal.write=error:0.15,checkpoint.write=error:0.15,"
      "checkpoint.read=error:0.15");
  ContinualPipeline pipeline(options);
  const auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->cycles_completed, 2);
  EXPECT_FALSE(report->stopped_early);
  EXPECT_GT(report->retries, 0) << "the recipe should have fired something";
}

// --- Multi-tenant publishing (DESIGN.md §14) ----------------------------

TEST_F(PipelineTest, PublishesIntoATenantRegistryAndResumesByAdoption) {
  serve::TenantRegistry registry;
  PipelineOptions options = TinyPipeline(FreshDir("pipe_tenant"));
  options.tenants = &registry;
  options.tenant_name = "pilot-city";

  ContinualPipeline pipeline(options);
  const auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->cycles_completed, 2);

  // The pipeline's engine IS the registry tenant's engine: first promotion
  // registered the city, the second cycle hot-swapped it in place.
  ASSERT_EQ(registry.size(), 1u);
  const auto tenant = registry.Get("pilot-city");
  ASSERT_TRUE(tenant.ok()) << tenant.status();
  EXPECT_EQ(pipeline.engine(), (*tenant)->engine.get());
  EXPECT_EQ((*tenant)->engine->epoch(), 2u);  // cycle 0 register + cycle 1 swap
  EXPECT_EQ((*tenant)->engine->health(), serve::ServeHealth::kServing);

  // A second pipeline resuming the DONE journal against the same registry
  // adopts the hosted tenant instead of re-registering the name.
  ContinualPipeline again(options);
  const auto rerun = again.Run();
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_TRUE(rerun->resumed);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(again.engine(), (*tenant)->engine.get());
}

TEST_F(PipelineTest, TwoCityPipelinesShareOneRegistryInIsolation) {
  serve::TenantRegistry registry;
  PipelineOptions north = TinyPipeline(FreshDir("pipe_tenant_north"));
  north.tenants = &registry;
  north.tenant_name = "north";
  north.cycles = 1;
  PipelineOptions south = TinyPipeline(FreshDir("pipe_tenant_south"));
  south.tenants = &registry;
  south.tenant_name = "south";
  south.cycles = 1;
  south.world.seed = 77;  // a different city, not a replica

  ContinualPipeline north_pipeline(north);
  ContinualPipeline south_pipeline(south);
  ASSERT_TRUE(north_pipeline.Run().ok());
  ASSERT_TRUE(south_pipeline.Run().ok());

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.TenantNames(),
            (std::vector<std::string>{"north", "south"}));
  ASSERT_NE(north_pipeline.engine(), nullptr);
  ASSERT_NE(south_pipeline.engine(), nullptr);
  EXPECT_NE(north_pipeline.engine(), south_pipeline.engine());
  EXPECT_EQ(north_pipeline.engine()->health(), serve::ServeHealth::kServing);
  EXPECT_EQ(south_pipeline.engine()->health(), serve::ServeHealth::kServing);
}

}  // namespace
}  // namespace o2sr::pipeline
