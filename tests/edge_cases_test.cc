// Edge-case coverage: components must behave sensibly on degenerate inputs
// (periods with no orders, empty relations, single-store markets) that real
// deployments hit on sparse days.

#include <gtest/gtest.h>

#include "core/courier_capacity_model.h"
#include "core/o2siterec.h"
#include "eval/experiment.h"
#include "features/order_stats.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"

namespace o2sr {
namespace {

sim::SimConfig TinyConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 2500.0;
  cfg.city_height_m = 2500.0;
  cfg.num_store_types = 5;
  cfg.num_stores = 40;
  cfg.num_couriers = 30;
  cfg.num_days = 2;
  cfg.peak_orders_per_region_slot = 3.0;
  cfg.seed = 111;
  return cfg;
}

// Orders restricted to a single period: every other period's mobility/S-U
// edge sets are empty.
std::vector<sim::Order> NoonOnly(const sim::Dataset& data) {
  std::vector<sim::Order> out;
  for (const sim::Order& o : data.orders) {
    if (o.period() == sim::Period::kNoonRush) out.push_back(o);
  }
  return out;
}

TEST(EdgeCaseTest, MobilityGraphWithEmptyPeriods) {
  const sim::Dataset data = sim::GenerateDataset(TinyConfig());
  const features::OrderStats stats(data, NoonOnly(data));
  const graphs::MobilityMultiGraph mobility(stats);
  EXPECT_GT(mobility.EdgesInPeriod(
                static_cast<int>(sim::Period::kNoonRush)).size(), 0u);
  EXPECT_TRUE(mobility.EdgesInPeriod(
                  static_cast<int>(sim::Period::kNight)).empty());
}

TEST(EdgeCaseTest, CapacityModelHandlesEmptyMobilityPeriods) {
  const sim::Dataset data = sim::GenerateDataset(TinyConfig());
  const features::OrderStats stats(data, NoonOnly(data));
  const graphs::GeoGraph geo(data.city.grid);
  const graphs::MobilityMultiGraph mobility(stats);
  nn::ParameterStore store;
  Rng rng(1);
  core::CourierCapacityConfig cfg;
  cfg.embedding_dim = 8;
  const core::CourierCapacityModel model(geo, mobility, cfg, &store, rng);
  // Forward on an empty period must fall back to the residual path.
  nn::Tape tape;
  nn::Value emb = model.RegionEmbeddings(
      tape, static_cast<int>(sim::Period::kNight));
  EXPECT_EQ(tape.rows(emb), data.num_regions());
  // Loss over all periods averages only non-empty ones and trains.
  nn::Tape tape2;
  nn::Value loss = model.ReconstructionLoss(tape2);
  EXPECT_GT(tape2.value(loss).at(0, 0), 0.0f);
  tape2.Backward(loss);
}

TEST(EdgeCaseTest, HeteroGraphWithSinglePeriodOrders) {
  const sim::Dataset data = sim::GenerateDataset(TinyConfig());
  const features::OrderStats stats(data, NoonOnly(data));
  const graphs::HeteroMultiGraph graph(data, stats);
  const int noon = static_cast<int>(sim::Period::kNoonRush);
  const int night = static_cast<int>(sim::Period::kNight);
  EXPECT_GT(graph.Subgraph(noon).ua_edges.size(), 0u);
  EXPECT_TRUE(graph.Subgraph(night).ua_edges.empty());
  // S-A edges are period-independent and must survive.
  EXPECT_FALSE(graph.sa_edges().empty());
}

TEST(EdgeCaseTest, FullModelTrainsOnSinglePeriodData) {
  const sim::Dataset data = sim::GenerateDataset(TinyConfig());
  const std::vector<sim::Order> noon_orders = NoonOnly(data);
  // Interactions from the restricted log.
  core::InteractionList train;
  {
    const features::OrderStats stats(data, noon_orders);
    for (int s = 0; s < stats.num_regions(); ++s) {
      for (int a = 0; a < stats.num_types(); ++a) {
        const double orders = stats.OrdersOfTypeInRegion(s, a);
        if (orders > 0) train.push_back({s, a, orders, orders / 50.0});
      }
    }
  }
  ASSERT_FALSE(train.empty());
  core::O2SiteRecConfig cfg;
  cfg.capacity.embedding_dim = 8;
  cfg.rec.embedding_dim = 16;
  cfg.rec.node_heads = 2;
  cfg.epochs = 3;
  core::O2SiteRec model(data, noon_orders, cfg);
  O2SR_CHECK_OK(model.Train(train));
  const std::vector<double> preds = model.Predict(train).value();
  for (double p : preds) EXPECT_TRUE(std::isfinite(p));
}

TEST(EdgeCaseTest, SingleStoreMarket) {
  // A market with one store still builds all structures.
  sim::SimConfig cfg = TinyConfig();
  cfg.num_stores = 1;
  const sim::Dataset data = sim::GenerateDataset(cfg);
  const features::OrderStats stats(data);
  const graphs::HeteroMultiGraph graph(data, stats);
  EXPECT_EQ(graph.num_store_nodes(), 1);
  EXPECT_GE(graph.sa_edges().size(), 1u);
}

TEST(EdgeCaseTest, ZeroDemandProducesNoOrdersButValidDataset) {
  sim::SimConfig cfg = TinyConfig();
  cfg.peak_orders_per_region_slot = 0.0;
  const sim::Dataset data = sim::GenerateDataset(cfg);
  EXPECT_TRUE(data.orders.empty());
  EXPECT_EQ(data.slot_stats.size(),
            static_cast<size_t>(cfg.num_days * sim::kSlotsPerDay));
  // Downstream aggregation still works.
  const features::OrderStats stats(data);
  EXPECT_EQ(stats.TotalStoreRegionOrders(0), 0.0);
  EXPECT_TRUE(eval::BuildInteractions(data).empty());
}

TEST(EdgeCaseTest, NoTasteNoiseConfigIsDeterministicallyDifferent) {
  sim::SimConfig with = TinyConfig();
  sim::SimConfig without = TinyConfig();
  without.taste_noise_sigma = 0.0;
  const sim::Dataset a = sim::GenerateDataset(with);
  const sim::Dataset b = sim::GenerateDataset(without);
  EXPECT_NE(a.orders.size(), b.orders.size());
}

}  // namespace
}  // namespace o2sr
