#include "common/table_printer.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace o2sr {
namespace {

std::string Render(const TablePrinter& t) {
  std::FILE* f = std::tmpfile();
  t.Print(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) out += buf;
  std::fclose(f);
  return out;
}

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Model", "NDCG@3"});
  t.AddRow({"HGT", "0.6331"});
  t.AddRow({"O2-SiteRec", "0.7102"});
  const std::string out = Render(t);
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("O2-SiteRec"), std::string::npos);
  EXPECT_NE(out.find("0.7102"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter t({"A", "B"});
  t.AddRow({"very-long-cell", "x"});
  const std::string out = Render(t);
  // Every line should have the same length because cells are padded.
  size_t prev = std::string::npos;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.71024, 4), "0.7102");
  EXPECT_EQ(TablePrinter::Num(2.0, 1), "2.0");
}

}  // namespace
}  // namespace o2sr
