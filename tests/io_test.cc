#include "sim/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace o2sr::sim {
namespace {

SimConfig TestConfig() {
  SimConfig cfg;
  cfg.city_width_m = 3000.0;
  cfg.city_height_m = 3000.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 80;
  cfg.num_couriers = 50;
  cfg.num_days = 2;
  cfg.peak_orders_per_region_slot = 3.0;
  cfg.seed = 71;
  return cfg;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class IoTest : public ::testing::Test {
 protected:
  static const Dataset& Data() {
    static const Dataset* data = new Dataset(GenerateDataset(TestConfig()));
    return *data;
  }
};

TEST_F(IoTest, OrdersRoundTrip) {
  const std::string path = TempPath("orders.csv");
  const geo::CityFrame frame;
  ASSERT_TRUE(WriteOrdersCsv(path, Data(), frame));
  std::vector<Order> loaded;
  ASSERT_TRUE(ReadOrdersCsv(path, frame, Data().city.grid, &loaded));
  ASSERT_EQ(loaded.size(), Data().orders.size());
  for (size_t i = 0; i < loaded.size(); i += 11) {
    const Order& a = Data().orders[i];
    const Order& b = loaded[i];
    EXPECT_EQ(a.order_id, b.order_id);
    EXPECT_EQ(a.store_id, b.store_id);
    EXPECT_EQ(a.courier_id, b.courier_id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.store_location.x, b.store_location.x, 0.1);
    EXPECT_NEAR(a.customer_location.y, b.customer_location.y, 0.1);
    EXPECT_NEAR(a.creation_min, b.creation_min, 1e-3);
    EXPECT_NEAR(a.delivery_min, b.delivery_min, 1e-3);
    EXPECT_NEAR(a.distance_m, b.distance_m, 0.1);
    // Region/day/slot reconstruction.
    EXPECT_EQ(a.store_region, b.store_region);
    EXPECT_EQ(a.customer_region, b.customer_region);
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.slot, b.slot);
  }
}

TEST_F(IoTest, StoresRoundTrip) {
  const std::string path = TempPath("stores.csv");
  const geo::CityFrame frame;
  ASSERT_TRUE(WriteStoresCsv(path, Data(), frame));
  std::vector<Store> loaded;
  ASSERT_TRUE(ReadStoresCsv(path, frame, Data().city.grid, &loaded));
  ASSERT_EQ(loaded.size(), Data().stores.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(Data().stores[i].id, loaded[i].id);
    EXPECT_EQ(Data().stores[i].type, loaded[i].type);
    EXPECT_EQ(Data().stores[i].region, loaded[i].region);
    EXPECT_NEAR(Data().stores[i].quality, loaded[i].quality, 1e-4);
    EXPECT_NEAR(Data().stores[i].location.x, loaded[i].location.x, 0.1);
  }
}

TEST_F(IoTest, TrajectoriesWriteRowsPerSample) {
  SimConfig cfg = TestConfig();
  cfg.num_days = 1;
  cfg.generate_trajectories = true;
  const Dataset data = GenerateDataset(cfg);
  const std::string path = TempPath("traj.csv");
  ASSERT_TRUE(WriteTrajectoriesCsv(path, data));
  // Count lines: header + total trajectory points.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  size_t lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') ++lines;
  }
  std::fclose(f);
  size_t expected = 1;
  for (const Trajectory& t : data.trajectories) expected += t.points.size();
  EXPECT_EQ(lines, expected);
}

TEST_F(IoTest, MissingFileReturnsFalse) {
  std::vector<Order> orders;
  EXPECT_FALSE(ReadOrdersCsv("/nonexistent/dir/orders.csv",
                             geo::CityFrame(), Data().city.grid, &orders));
  EXPECT_FALSE(WriteOrdersCsv("/nonexistent/dir/orders.csv", Data()));
  std::vector<Store> stores;
  EXPECT_FALSE(ReadStoresCsv("/nonexistent/dir/stores.csv",
                             geo::CityFrame(), Data().city.grid, &stores));
}

TEST_F(IoTest, HeaderOnlyFileYieldsNoOrders) {
  const std::string path = TempPath("empty_orders.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "order_id,store_id,...\n");
  std::fclose(f);
  std::vector<Order> orders;
  ASSERT_TRUE(ReadOrdersCsv(path, geo::CityFrame(), Data().city.grid,
                            &orders));
  EXPECT_TRUE(orders.empty());
}

}  // namespace
}  // namespace o2sr::sim
