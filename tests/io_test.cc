#include "sim/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"

namespace o2sr::sim {
namespace {

using common::Status;
using common::StatusCode;

SimConfig TestConfig() {
  SimConfig cfg;
  cfg.city_width_m = 3000.0;
  cfg.city_height_m = 3000.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 80;
  cfg.num_couriers = 50;
  cfg.num_days = 2;
  cfg.peak_orders_per_region_slot = 3.0;
  cfg.seed = 71;
  return cfg;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

constexpr const char* kOrdersHeader =
    "order_id,store_id,courier_id,store_type,"
    "store_lat,store_lng,customer_lat,customer_lng,"
    "creation_min,acceptance_min,pickup_min,delivery_min,distance_m\n";

// One syntactically valid order row (13 fields).
constexpr const char* kGoodOrderRow =
    "1,2,3,4,31.2001,121.4001,31.2002,121.4002,10.0,12.0,15.0,30.0,850.0\n";

class IoTest : public ::testing::Test {
 protected:
  static const Dataset& Data() {
    static const Dataset* data = new Dataset(GenerateDataset(TestConfig()));
    return *data;
  }
};

TEST_F(IoTest, OrdersRoundTrip) {
  const std::string path = TempPath("orders.csv");
  const geo::CityFrame frame;
  ASSERT_TRUE(WriteOrdersCsv(path, Data(), frame).ok());
  std::vector<Order> loaded;
  ASSERT_TRUE(ReadOrdersCsv(path, frame, Data().city.grid, &loaded).ok());
  ASSERT_EQ(loaded.size(), Data().orders.size());
  for (size_t i = 0; i < loaded.size(); i += 11) {
    const Order& a = Data().orders[i];
    const Order& b = loaded[i];
    EXPECT_EQ(a.order_id, b.order_id);
    EXPECT_EQ(a.store_id, b.store_id);
    EXPECT_EQ(a.courier_id, b.courier_id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.store_location.x, b.store_location.x, 0.1);
    EXPECT_NEAR(a.customer_location.y, b.customer_location.y, 0.1);
    EXPECT_NEAR(a.creation_min, b.creation_min, 1e-3);
    EXPECT_NEAR(a.delivery_min, b.delivery_min, 1e-3);
    EXPECT_NEAR(a.distance_m, b.distance_m, 0.1);
    // Region/day/slot reconstruction.
    EXPECT_EQ(a.store_region, b.store_region);
    EXPECT_EQ(a.customer_region, b.customer_region);
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.slot, b.slot);
  }
}

TEST_F(IoTest, StoresRoundTrip) {
  const std::string path = TempPath("stores.csv");
  const geo::CityFrame frame;
  ASSERT_TRUE(WriteStoresCsv(path, Data(), frame).ok());
  std::vector<Store> loaded;
  ASSERT_TRUE(ReadStoresCsv(path, frame, Data().city.grid, &loaded).ok());
  ASSERT_EQ(loaded.size(), Data().stores.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(Data().stores[i].id, loaded[i].id);
    EXPECT_EQ(Data().stores[i].type, loaded[i].type);
    EXPECT_EQ(Data().stores[i].region, loaded[i].region);
    EXPECT_NEAR(Data().stores[i].quality, loaded[i].quality, 1e-4);
    EXPECT_NEAR(Data().stores[i].location.x, loaded[i].location.x, 0.1);
  }
}

TEST_F(IoTest, TrajectoriesWriteRowsPerSample) {
  SimConfig cfg = TestConfig();
  cfg.num_days = 1;
  cfg.generate_trajectories = true;
  const Dataset data = GenerateDataset(cfg);
  const std::string path = TempPath("traj.csv");
  ASSERT_TRUE(WriteTrajectoriesCsv(path, data).ok());
  // Count lines: header + total trajectory points.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  size_t lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') ++lines;
  }
  std::fclose(f);
  size_t expected = 1;
  for (const Trajectory& t : data.trajectories) expected += t.points.size();
  EXPECT_EQ(lines, expected);
}

TEST_F(IoTest, MissingFileReturnsNotFound) {
  std::vector<Order> orders;
  const Status read = ReadOrdersCsv("/nonexistent/dir/orders.csv",
                                    geo::CityFrame(), Data().city.grid,
                                    &orders);
  EXPECT_EQ(read.code(), StatusCode::kNotFound);
  EXPECT_NE(read.message().find("/nonexistent/dir/orders.csv"),
            std::string::npos);
  EXPECT_EQ(WriteOrdersCsv("/nonexistent/dir/orders.csv", Data()).code(),
            StatusCode::kUnavailable);
  std::vector<Store> stores;
  EXPECT_EQ(ReadStoresCsv("/nonexistent/dir/stores.csv", geo::CityFrame(),
                          Data().city.grid, &stores)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(IoTest, HeaderOnlyFileYieldsNoOrders) {
  const std::string path = TempPath("empty_orders.csv");
  WriteFile(path, kOrdersHeader);
  std::vector<Order> orders;
  ASSERT_TRUE(
      ReadOrdersCsv(path, geo::CityFrame(), Data().city.grid, &orders).ok());
  EXPECT_TRUE(orders.empty());
}

TEST_F(IoTest, StrictReadFailsOnMissingField) {
  const std::string path = TempPath("missing_field.csv");
  // Second data row drops the trailing distance_m field (12 of 13 cells).
  WriteFile(path, std::string(kOrdersHeader) + kGoodOrderRow +
                      "2,3,4,5,31.2,121.4,31.2,121.4,10,12,15,30\n");
  std::vector<Order> orders;
  const Status read =
      ReadOrdersCsv(path, geo::CityFrame(), Data().city.grid, &orders);
  EXPECT_EQ(read.code(), StatusCode::kInvalidArgument);
  // The error names the offending line and the arity problem.
  EXPECT_NE(read.message().find("line 3"), std::string::npos) << read;
  EXPECT_NE(read.message().find("expected 13 fields, got 12"),
            std::string::npos)
      << read;
}

TEST_F(IoTest, StrictReadFailsOnNonNumericTimestamp) {
  const std::string path = TempPath("bad_timestamp.csv");
  WriteFile(path, std::string(kOrdersHeader) +
                      "1,2,3,4,31.2,121.4,31.2,121.4,"
                      "yesterday,12,15,30,850\n");
  std::vector<Order> orders;
  const Status read =
      ReadOrdersCsv(path, geo::CityFrame(), Data().city.grid, &orders);
  EXPECT_EQ(read.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.message().find("line 2"), std::string::npos) << read;
  EXPECT_NE(read.message().find("creation_min"), std::string::npos) << read;
  EXPECT_NE(read.message().find("yesterday"), std::string::npos) << read;
}

TEST_F(IoTest, StrictReadFailsOnTruncatedLastLine) {
  const std::string path = TempPath("truncated.csv");
  // Simulates a crash mid-write: the final row stops in the middle of a
  // coordinate and has no trailing newline.
  WriteFile(path, std::string(kOrdersHeader) + kGoodOrderRow + "2,3,4,5,31.2");
  std::vector<Order> orders;
  const Status read =
      ReadOrdersCsv(path, geo::CityFrame(), Data().city.grid, &orders);
  EXPECT_EQ(read.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.message().find("line 3"), std::string::npos) << read;
}

TEST_F(IoTest, SkipPolicyCountsBadRowsAndKeepsGoodOnes) {
  const std::string path = TempPath("mixed_rows.csv");
  WriteFile(path, std::string(kOrdersHeader) + kGoodOrderRow +
                      "2,3,4,5,31.2,121.4,31.2,121.4,10,12,15,30\n" +  // arity
                      kGoodOrderRow +
                      "4,5,6,7,31.2,121.4,31.2,121.4,nan?,12,15,30,850\n" +
                      kGoodOrderRow);
  CsvReadOptions options;
  options.policy = CsvRowPolicy::kSkipBadRows;
  CsvReadReport report;
  std::vector<Order> orders;
  ASSERT_TRUE(ReadOrdersCsv(path, geo::CityFrame(), Data().city.grid, &orders,
                            options, &report)
                  .ok());
  EXPECT_EQ(orders.size(), 3u);
  EXPECT_EQ(report.rows_parsed, 3);
  EXPECT_EQ(report.rows_skipped, 2);
  // The report remembers the first drop so ingest logs can point at it.
  EXPECT_NE(report.first_skipped.find("line 3"), std::string::npos)
      << report.first_skipped;
}

TEST_F(IoTest, SkipPolicyOnStoresCsv) {
  const std::string path = TempPath("mixed_stores.csv");
  WriteFile(path,
            "store_id,type_id,type_name,lat,lng,quality\n"
            "0,1,Grocery,31.2001,121.4001,0.5\n"
            "one,1,Grocery,31.2001,121.4001,0.5\n"
            "2,3,Pharmacy,31.2002,121.4002,0.75\n");
  // Strict read names the bad field.
  std::vector<Store> stores;
  const Status strict =
      ReadStoresCsv(path, geo::CityFrame(), Data().city.grid, &stores);
  EXPECT_EQ(strict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.message().find("store_id"), std::string::npos) << strict;
  // Skip policy recovers the two good rows.
  CsvReadOptions options;
  options.policy = CsvRowPolicy::kSkipBadRows;
  CsvReadReport report;
  ASSERT_TRUE(ReadStoresCsv(path, geo::CityFrame(), Data().city.grid, &stores,
                            options, &report)
                  .ok());
  ASSERT_EQ(stores.size(), 2u);
  EXPECT_EQ(stores[0].id, 0);
  EXPECT_EQ(stores[1].id, 2);
  EXPECT_EQ(report.rows_parsed, 2);
  EXPECT_EQ(report.rows_skipped, 1);
}

}  // namespace
}  // namespace o2sr::sim
