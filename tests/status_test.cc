#include "common/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

namespace o2sr::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("line 7: field 'x': not a number");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "line 7: field 'x': not a number");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: line 7: field 'x': not a number");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrependsAndPreservesCode) {
  const Status inner = DataLossError("checksum mismatch");
  const Status outer = inner.WithContext("loading checkpoint 'a.ckpt'");
  EXPECT_EQ(outer.code(), StatusCode::kDataLoss);
  EXPECT_EQ(outer.message(), "loading checkpoint 'a.ckpt': checksum mismatch");
  // No-op on OK.
  EXPECT_TRUE(Status::Ok().WithContext("anything").ok());
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream oss;
  oss << NotFoundError("no such file");
  EXPECT_EQ(oss.str(), "NOT_FOUND: no such file");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> s = 42;
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), 42);
  EXPECT_EQ(*s, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<std::vector<double>> s = NotFoundError("missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveUnwrap) {
  StatusOr<std::string> s = std::string("payload");
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsWhen(bool fail) {
  if (fail) return AbortedError("inner failure");
  return Status::Ok();
}

Status Propagates(bool fail) {
  O2SR_RETURN_IF_ERROR(FailsWhen(fail));
  return InternalError("reached past the macro");
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesFailure) {
  EXPECT_EQ(Propagates(true).code(), StatusCode::kAborted);
  EXPECT_EQ(Propagates(false).code(), StatusCode::kInternal);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return OutOfRangeError("not positive");
  return v;
}

Status SumOfParsed(int a, int b, int* out) {
  O2SR_ASSIGN_OR_RETURN(const int pa, ParsePositive(a));
  O2SR_ASSIGN_OR_RETURN(const int pb, ParsePositive(b));
  *out = pa + pb;
  return Status::Ok();
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  int sum = 0;
  ASSERT_TRUE(SumOfParsed(2, 3, &sum).ok());
  EXPECT_EQ(sum, 5);
  EXPECT_EQ(SumOfParsed(-1, 3, &sum).code(), StatusCode::kOutOfRange);
}

TEST(StatusMacroTest, ReturnIfErrorWorksInStatusOrFunction) {
  const auto fn = [](bool fail) -> StatusOr<int> {
    O2SR_RETURN_IF_ERROR(FailsWhen(fail));
    return 7;
  };
  EXPECT_EQ(fn(true).status().code(), StatusCode::kAborted);
  EXPECT_EQ(fn(false).value(), 7);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  const int lhs = 14;
  EXPECT_DEATH(O2SR_CHECK_EQ(lhs, 13), "14 vs 13");
}

TEST(CheckDeathTest, CheckOpWorksOnScopedEnums) {
  EXPECT_DEATH(O2SR_CHECK_EQ(StatusCode::kNotFound, StatusCode::kOk),
               "2 vs 0");
}

TEST(CheckDeathTest, CheckOkPrintsTheStatus) {
  EXPECT_DEATH(O2SR_CHECK_OK(DataLossError("bad checksum")),
               "DATA_LOSS: bad checksum");
  // OK statuses pass silently.
  O2SR_CHECK_OK(Status::Ok());
}

TEST(CheckDeathTest, StatusOrValueOnErrorDies) {
  StatusOr<int> s = NotFoundError("gone");
  EXPECT_DEATH((void)s.value(), "NOT_FOUND: gone");
}

}  // namespace
}  // namespace o2sr::common
