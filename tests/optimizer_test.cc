#include <cmath>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/parameter.h"
#include "nn/tape.h"

namespace o2sr::nn {
namespace {

TEST(AdamTest, SingleStepMovesAgainstGradient) {
  ParameterStore store;
  Parameter* p = store.CreateZeros("p", 1, 1);
  p->value.at(0, 0) = 1.0f;
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.1;
  opts.clip_norm = 0.0;
  AdamOptimizer adam(&store, opts);

  Tape tape;
  Value v = tape.Param(p);
  tape.Backward(tape.MeanAll(tape.Mul(v, v)));  // grad = 2p = 2 > 0
  adam.Step();
  EXPECT_LT(p->value.at(0, 0), 1.0f);
  // First Adam step magnitude is ~lr regardless of gradient scale.
  EXPECT_NEAR(p->value.at(0, 0), 1.0f - 0.1f, 1e-3);
}

TEST(AdamTest, StepClearsGradients) {
  ParameterStore store;
  Parameter* p = store.CreateZeros("p", 1, 1);
  p->value.at(0, 0) = 1.0f;
  AdamOptimizer adam(&store, {});
  Tape tape;
  Value v = tape.Param(p);
  tape.Backward(tape.MeanAll(v));
  EXPECT_NE(p->grad.at(0, 0), 0.0f);
  adam.Step();
  EXPECT_EQ(p->grad.at(0, 0), 0.0f);
}

TEST(AdamTest, MinimizesQuadratic) {
  ParameterStore store;
  Parameter* p = store.CreateZeros("p", 1, 2);
  p->value.at(0, 0) = 4.0f;
  p->value.at(0, 1) = -3.0f;
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.05;
  AdamOptimizer adam(&store, opts);
  const Tensor target = Tensor::FromVector(1, 2, {1.0f, 2.0f});
  for (int i = 0; i < 600; ++i) {
    Tape tape;
    Value loss = tape.MseLoss(tape.Param(p), tape.Input(target));
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(p->value.at(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(p->value.at(0, 1), 2.0f, 0.05f);
}

TEST(AdamTest, GradientClippingBoundsUpdateDirection) {
  ParameterStore store;
  Parameter* p = store.CreateZeros("p", 1, 1);
  p->value.at(0, 0) = 1000.0f;
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.01;
  opts.clip_norm = 1.0;
  AdamOptimizer adam(&store, opts);
  Tape tape;
  Value v = tape.Param(p);
  tape.Backward(tape.MeanAll(tape.Mul(v, v)));  // huge gradient
  adam.Step();
  // Update magnitude stays ~lr because of clipping + Adam normalization.
  EXPECT_NEAR(p->value.at(0, 0), 1000.0f - 0.01f, 1e-3);
}

TEST(AdamTest, TrainsSmallRegressionToLowLoss) {
  // End-to-end: fit y = 2x - 1 with a 2-layer MLP.
  ParameterStore store;
  Rng rng(7);
  Mlp mlp(&store, "mlp", {1, 8, 1}, rng, Activation::kTanh);
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.02;
  AdamOptimizer adam(&store, opts);

  Tensor x(16, 1), y(16, 1);
  for (int i = 0; i < 16; ++i) {
    const float xv = -1.0f + 2.0f * i / 15.0f;
    x.at(i, 0) = xv;
    y.at(i, 0) = 2.0f * xv - 1.0f;
  }
  double final_loss = 1e9;
  for (int epoch = 0; epoch < 500; ++epoch) {
    Tape tape;
    Value pred = mlp.Apply(tape, tape.Input(x));
    Value loss = tape.MseLoss(pred, tape.Input(y));
    final_loss = tape.value(loss).at(0, 0);
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.01);
}

TEST(ParameterStoreTest, NumScalarsCounts) {
  ParameterStore store;
  Rng rng(1);
  store.CreateXavier("a", 3, 4, rng);
  store.CreateZeros("b", 1, 5);
  EXPECT_EQ(store.NumScalars(), 12u + 5u);
}

}  // namespace
}  // namespace o2sr::nn
