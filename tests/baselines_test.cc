#include <cmath>

#include <gtest/gtest.h>

#include "baselines/baseline_common.h"
#include "baselines/factory.h"
#include "eval/experiment.h"
#include "features/order_stats.h"

namespace o2sr::baselines {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3500.0;
  cfg.city_height_m = 3500.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 140;
  cfg.num_couriers = 60;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 51;
  return cfg;
}

struct Fixture {
  sim::Dataset data;
  eval::Split split;

  Fixture() : data(sim::GenerateDataset(TestConfig())) {
    split = eval::SplitInteractions(data, eval::BuildInteractions(data),
                                    {0.8, /*seed=*/2});
  }
};

const Fixture& F() {
  static const Fixture* f = new Fixture();
  return *f;
}

// Training context over the shared fixture (hooks/report/pool defaulted).
core::TrainContext Ctx() {
  core::TrainContext ctx;
  ctx.data = &F().data;
  ctx.visible_orders = &F().split.train_orders;
  ctx.train = &F().split.train;
  return ctx;
}

BaselineConfig SmallConfig(FeatureSetting setting) {
  BaselineConfig cfg;
  cfg.embedding_dim = 16;
  cfg.epochs = 15;
  cfg.setting = setting;
  return cfg;
}

TEST(FeatureSettingTest, Names) {
  EXPECT_STREQ(FeatureSettingName(FeatureSetting::kOriginal), "Original");
  EXPECT_STREQ(FeatureSettingName(FeatureSetting::kAdaption), "Adaption");
}

TEST(PairFeatureBuilderTest, DimensionsBySetting) {
  const features::OrderStats stats(F().data, F().split.train_orders);
  const PairFeatureBuilder original(F().data, stats,
                                    FeatureSetting::kOriginal);
  const PairFeatureBuilder adaption(F().data, stats,
                                    FeatureSetting::kAdaption);
  EXPECT_EQ(original.dim(), 16 + 2);
  EXPECT_EQ(adaption.dim(), 16 + 2 + 3);
}

TEST(PairFeatureBuilderTest, FeatureValuesBoundedAndAligned) {
  const features::OrderStats stats(F().data, F().split.train_orders);
  const PairFeatureBuilder builder(F().data, stats,
                                   FeatureSetting::kAdaption);
  const nn::Tensor feats = builder.Build(F().split.train);
  ASSERT_EQ(feats.rows(), static_cast<int>(F().split.train.size()));
  ASSERT_EQ(feats.cols(), builder.dim());
  for (size_t i = 0; i < feats.size(); ++i) {
    EXPECT_TRUE(std::isfinite(feats.data()[i]));
    EXPECT_GE(feats.data()[i], 0.0f);
    EXPECT_LE(feats.data()[i], 1.2f);
  }
}

TEST(PairFeatureBuilderTest, SameRegionSameBaseBlock) {
  const features::OrderStats stats(F().data, F().split.train_orders);
  const PairFeatureBuilder builder(F().data, stats,
                                   FeatureSetting::kOriginal);
  // Two pairs in the same region but different types share the region block.
  core::InteractionList pairs = {{10, 0, 0, 0}, {10, 1, 0, 0}};
  const nn::Tensor feats = builder.Build(pairs);
  for (int c = 0; c < 16; ++c) {
    EXPECT_EQ(feats.at(0, c), feats.at(1, c));
  }
}

TEST(RegionIndexTest, MapsStoreRegionsOnly) {
  const RegionIndex index(F().data);
  EXPECT_GT(index.num_nodes(), 0);
  std::vector<bool> has_store(F().data.num_regions(), false);
  for (const auto& s : F().data.stores) has_store[s.region] = true;
  for (int r = 0; r < F().data.num_regions(); ++r) {
    EXPECT_EQ(index.NodeOf(r) >= 0, has_store[r]);
  }
  for (int i = 0; i < index.num_nodes(); ++i) {
    EXPECT_EQ(index.NodeOf(index.regions()[i]), i);
  }
}

TEST(FactoryTest, NamesAreUnique) {
  std::set<std::string> names;
  for (auto kind : kAllBaselines) {
    names.insert(BaselineKindName(kind));
    auto model = MakeBaseline(kind, SmallConfig(FeatureSetting::kOriginal));
    ASSERT_NE(model, nullptr);
  }
  EXPECT_EQ(names.size(), 6u);
}

// Every baseline x setting trains, predicts finite values in range, and
// fits the training data better than the constant predictor.
class BaselineRunTest
    : public ::testing::TestWithParam<std::tuple<BaselineKind, FeatureSetting>> {};

TEST_P(BaselineRunTest, TrainsAndPredicts) {
  const auto [kind, setting] = GetParam();
  auto model = MakeBaseline(kind, SmallConfig(setting));
  O2SR_CHECK_OK(model->Train(Ctx()));
  const std::vector<double> preds = model->Predict(F().split.test).value();
  ASSERT_EQ(preds.size(), F().split.test.size());
  for (double p : preds) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(BaselineRunTest, FitsTrainBetterThanConstant) {
  const auto [kind, setting] = GetParam();
  BaselineConfig cfg = SmallConfig(setting);
  cfg.epochs = 60;
  auto model = MakeBaseline(kind, cfg);
  O2SR_CHECK_OK(model->Train(Ctx()));
  const std::vector<double> preds = model->Predict(F().split.train).value();
  double mean = 0.0;
  for (const auto& it : F().split.train) mean += it.target;
  mean /= F().split.train.size();
  double model_se = 0.0, const_se = 0.0;
  for (size_t i = 0; i < preds.size(); ++i) {
    const double t = F().split.train[i].target;
    model_se += (preds[i] - t) * (preds[i] - t);
    const_se += (mean - t) * (mean - t);
  }
  EXPECT_LT(model_se, const_se) << BaselineKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineRunTest,
    ::testing::Combine(::testing::ValuesIn(kAllBaselines),
                       ::testing::Values(FeatureSetting::kOriginal,
                                         FeatureSetting::kAdaption)),
    [](const auto& info) {
      std::string out;
      for (const char c : std::string(BaselineKindName(std::get<0>(info.param)))) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      out += '_';
      out += FeatureSettingName(std::get<1>(info.param));
      return out;
    });

TEST(BaselineApiTest, TrainRejectsNullContextFields) {
  auto model = MakeBaseline(BaselineKind::kCityTransfer,
                            SmallConfig(FeatureSetting::kOriginal));
  core::TrainContext ctx;  // everything null
  EXPECT_EQ(model->Train(ctx).code(), common::StatusCode::kInvalidArgument);
  ctx.data = &F().data;
  EXPECT_EQ(model->Train(ctx).code(), common::StatusCode::kInvalidArgument);
}

TEST(BaselineApiTest, PredictBeforeTrainFails) {
  auto model = MakeBaseline(BaselineKind::kCityTransfer,
                            SmallConfig(FeatureSetting::kOriginal));
  const auto result = model->Predict(F().split.test);
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(BaselineApiTest, PredictRejectsUnknownRegion) {
  auto model = MakeBaseline(BaselineKind::kCityTransfer,
                            SmallConfig(FeatureSetting::kOriginal));
  O2SR_CHECK_OK(model->Train(Ctx()));
  // Find a region without stores: it has no node in the model.
  std::vector<bool> has_store(F().data.num_regions(), false);
  for (const auto& s : F().data.stores) has_store[s.region] = true;
  int unknown = -1;
  for (int r = 0; r < F().data.num_regions(); ++r) {
    if (!has_store[r]) { unknown = r; break; }
  }
  ASSERT_GE(unknown, 0) << "test dataset unexpectedly has stores everywhere";
  const auto result = model->Predict({{unknown, 0, 0.0, 0.0}});
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(BaselineDeterminismTest, SameSeedSamePredictions) {
  auto run = [&]() {
    auto model = MakeBaseline(BaselineKind::kHgt,
                              SmallConfig(FeatureSetting::kAdaption));
    O2SR_CHECK_OK(model->Train(Ctx()));
    return model->Predict(F().split.test).value();
  };
  const auto a = run();
  const auto b = run();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace o2sr::baselines
