// Tests of the adaptive top-N evaluation behavior (see DESIGN.md: with
// candidate pools <= N, a fixed ground-truth top-N marks every candidate
// relevant and all rankings score 1).

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace o2sr::eval {
namespace {

// Builds a synthetic test set: one type, `pool` candidate regions with
// strictly decreasing order counts.
core::InteractionList MakeTestSet(int pool) {
  core::InteractionList out;
  for (int i = 0; i < pool; ++i) {
    core::Interaction it;
    it.region = i;
    it.type = 0;
    it.orders = pool - i;
    it.target = static_cast<double>(pool - i) / pool;
    out.push_back(it);
  }
  return out;
}

// A deliberately bad ranking: reverse order.
std::vector<double> ReversedPredictions(int pool) {
  std::vector<double> preds(pool);
  for (int i = 0; i < pool; ++i) preds[i] = static_cast<double>(i);
  return preds;
}

TEST(AdaptiveTopNTest, FixedNSaturatesOnSmallPools) {
  const int pool = 25;  // smaller than N = 30
  EvalOptions opts;
  opts.min_candidates = 1;
  opts.adaptive_top_n = false;
  const EvalResult r = Evaluate(MakeTestSet(pool), ReversedPredictions(pool),
                                opts);
  // Every candidate is in the truth top-30, so even the reversed ranking is
  // "perfect" — the degenerate case motivating adaptive N.
  EXPECT_DOUBLE_EQ(r.ndcg.at(3), 1.0);
  EXPECT_DOUBLE_EQ(r.precision.at(3), 1.0);
}

TEST(AdaptiveTopNTest, AdaptiveNStaysDiscriminative) {
  const int pool = 25;
  EvalOptions opts;
  opts.min_candidates = 1;
  opts.adaptive_top_n = true;
  const EvalResult r = Evaluate(MakeTestSet(pool), ReversedPredictions(pool),
                                opts);
  // With N = max(10, 25/2) = 12 the reversed ranking's top-3 is
  // irrelevant.
  EXPECT_DOUBLE_EQ(r.ndcg.at(3), 0.0);
  EXPECT_DOUBLE_EQ(r.precision.at(3), 0.0);
}

TEST(AdaptiveTopNTest, LargePoolsUnaffected) {
  const int pool = 100;  // >= 2 * N: the paper's regime
  const auto test_set = MakeTestSet(pool);
  std::vector<double> noisy(pool);
  Rng rng(3);
  for (int i = 0; i < pool; ++i) {
    noisy[i] = test_set[i].target + rng.Normal(0.0, 0.2);
  }
  EvalOptions fixed;
  fixed.min_candidates = 1;
  fixed.adaptive_top_n = false;
  EvalOptions adaptive = fixed;
  adaptive.adaptive_top_n = true;
  const EvalResult a = Evaluate(test_set, noisy, fixed);
  const EvalResult b = Evaluate(test_set, noisy, adaptive);
  EXPECT_DOUBLE_EQ(a.ndcg.at(3), b.ndcg.at(3));
  EXPECT_DOUBLE_EQ(a.precision.at(5), b.precision.at(5));
}

TEST(AdaptiveTopNTest, PerfectRankingStillPerfect) {
  for (int pool : {15, 30, 60}) {
    const auto test_set = MakeTestSet(pool);
    std::vector<double> perfect(pool);
    for (int i = 0; i < pool; ++i) perfect[i] = test_set[i].target;
    EvalOptions opts;
    opts.min_candidates = 1;
    const EvalResult r = Evaluate(test_set, perfect, opts);
    EXPECT_DOUBLE_EQ(r.ndcg.at(3), 1.0) << "pool " << pool;
    EXPECT_DOUBLE_EQ(r.precision.at(3), 1.0) << "pool " << pool;
  }
}

}  // namespace
}  // namespace o2sr::eval
