#include "common/retry.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace o2sr::common {
namespace {

// A policy with zero backoff so failure-path tests don't sleep.
RetryPolicy FastPolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_ms = 0.0;
  policy.max_backoff_ms = 0.0;
  return policy;
}

// --- Backoff schedule --------------------------------------------------

TEST(RetryBackoffTest, ScheduleIsDeterministicPerSeedAndOp) {
  RetryPolicy policy;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_DOUBLE_EQ(BackoffMsForAttempt(policy, "train", attempt),
                     BackoffMsForAttempt(policy, "train", attempt))
        << "attempt " << attempt;
  }
  // A different op name or seed draws a different jitter stream.
  RetryPolicy other_seed = policy;
  other_seed.seed = 43;
  bool any_diff = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    any_diff = any_diff ||
               BackoffMsForAttempt(policy, "train", attempt) !=
                   BackoffMsForAttempt(policy, "export", attempt) ||
               BackoffMsForAttempt(policy, "train", attempt) !=
                   BackoffMsForAttempt(other_seed, "train", attempt);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryBackoffTest, GrowsExponentiallyWithinJitterBandAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.growth = 2.0;
  policy.max_backoff_ms = 50.0;
  policy.jitter = 0.2;
  // Attempt n+1 backs off ~ 10 * 2^(n-1), capped at 50, +/- 20% jitter.
  const double expected_base[] = {10.0, 20.0, 40.0, 50.0, 50.0};
  for (int i = 0; i < 5; ++i) {
    const double ms = BackoffMsForAttempt(policy, "op", i + 1);
    EXPECT_GE(ms, expected_base[i] * 0.8) << "attempt " << i + 1;
    EXPECT_LE(ms, expected_base[i] * 1.2) << "attempt " << i + 1;
  }
}

TEST(RetryBackoffTest, ZeroJitterIsTheExactExponential) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 5.0;
  policy.growth = 3.0;
  policy.max_backoff_ms = 1000.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffMsForAttempt(policy, "op", 1), 5.0);
  EXPECT_DOUBLE_EQ(BackoffMsForAttempt(policy, "op", 2), 15.0);
  EXPECT_DOUBLE_EQ(BackoffMsForAttempt(policy, "op", 3), 45.0);
}

// --- RunWithRetry ------------------------------------------------------

TEST(RunWithRetryTest, FirstTrySuccessRunsOnce) {
  RetryStats stats;
  int calls = 0;
  const Status status = RunWithRetry(
      FastPolicy(4), "op",
      [&]() {
        ++calls;
        return Status::Ok();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(stats.last_error.ok());
}

TEST(RunWithRetryTest, TransientFailuresAreRetriedUntilSuccess) {
  RetryStats stats;
  int calls = 0;
  const Status status = RunWithRetry(
      FastPolicy(4), "op",
      [&]() {
        return ++calls < 3 ? UnavailableError("flaky") : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kUnavailable);
}

TEST(RunWithRetryTest, ExhaustionReturnsLastErrorWithAttemptContext) {
  int calls = 0;
  const Status status = RunWithRetry(FastPolicy(3), "train_cycle", [&]() {
    ++calls;
    return UnavailableError("still down");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.ToString().find("train_cycle"), std::string::npos)
      << status;
  EXPECT_NE(status.ToString().find("3"), std::string::npos) << status;
}

TEST(RunWithRetryTest, NonRetryableErrorFailsFast) {
  int calls = 0;
  const Status status = RunWithRetry(FastPolicy(5), "op", [&]() {
    ++calls;
    return InvalidArgumentError("contract violation");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(RunWithRetryTest, CustomRetryablePredicateOverridesTheDefault) {
  RetryPolicy policy = FastPolicy(3);
  policy.retryable = [](const Status& s) {
    return s.code() == StatusCode::kNotFound;
  };
  int not_found_calls = 0;
  EXPECT_FALSE(RunWithRetry(policy, "op", [&]() {
                 ++not_found_calls;
                 return NotFoundError("keep looking");
               }).ok());
  EXPECT_EQ(not_found_calls, 3);
  // UNAVAILABLE (retryable by default) now fails fast.
  int unavailable_calls = 0;
  EXPECT_FALSE(RunWithRetry(policy, "op", [&]() {
                 ++unavailable_calls;
                 return UnavailableError("down");
               }).ok());
  EXPECT_EQ(unavailable_calls, 1);
}

TEST(RunWithRetryTest, DefaultRetryablePredicate) {
  EXPECT_TRUE(DefaultRetryable(UnavailableError("x")));
  EXPECT_TRUE(DefaultRetryable(AbortedError("x")));
  EXPECT_TRUE(DefaultRetryable(DataLossError("x")));
  EXPECT_TRUE(DefaultRetryable(ResourceExhaustedError("x")));
  EXPECT_FALSE(DefaultRetryable(InvalidArgumentError("x")));
  EXPECT_FALSE(DefaultRetryable(NotFoundError("x")));
  EXPECT_FALSE(DefaultRetryable(FailedPreconditionError("x")));
  EXPECT_FALSE(DefaultRetryable(Status::Ok()));
}

TEST(RunWithRetryTest, StatusOrFlavorReturnsTheSuccessfulValue) {
  int calls = 0;
  const StatusOr<int> result = RunWithRetry<int>(
      FastPolicy(4), "op", [&]() -> StatusOr<int> {
        return ++calls < 2 ? StatusOr<int>(UnavailableError("flaky"))
                           : StatusOr<int>(7);
      });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(calls, 2);
}

TEST(RunWithRetryTest, ZeroAttemptsRunsNothing) {
  int calls = 0;
  const Status status = RunWithRetry(FastPolicy(0), "op", [&]() {
    ++calls;
    return Status::Ok();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 0);
}

TEST(RunWithRetryTest, PerAttemptTimeoutTurnsALateResultIntoAborted) {
  RetryPolicy policy = FastPolicy(2);
  policy.per_attempt_timeout_ms = 1.0;
  int calls = 0;
  const Status status = RunWithRetry(policy, "slow_op", [&]() {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::Ok();  // too late: must not be acted on
  });
  EXPECT_EQ(calls, 2);  // ABORTED is retryable, so the budget is spent
  EXPECT_EQ(status.code(), StatusCode::kAborted) << status;
}

TEST(RunWithRetryTest, FastResultBeatsThePerAttemptTimeout) {
  RetryPolicy policy = FastPolicy(2);
  policy.per_attempt_timeout_ms = 60000.0;
  EXPECT_TRUE(RunWithRetry(policy, "op", []() { return Status::Ok(); }).ok());
}

TEST(RunWithRetryTest, SleptTimeMatchesTheDeterministicSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1.0;
  policy.growth = 2.0;
  policy.max_backoff_ms = 4.0;
  policy.jitter = 0.2;
  policy.seed = 9;
  RetryStats stats;
  (void)RunWithRetry(
      policy, "op", []() { return UnavailableError("down"); }, &stats);
  const double expected = BackoffMsForAttempt(policy, "op", 1) +
                          BackoffMsForAttempt(policy, "op", 2);
  EXPECT_DOUBLE_EQ(stats.slept_ms, expected);
}

}  // namespace
}  // namespace o2sr::common
