// The planned executor's central contract (DESIGN.md §13): compiling a
// tape segment into a Plan — fusion, pooled buffers, one exec::Session —
// must change nothing about the numbers. These tests train the full
// O2-SiteRec model and the two matrix-factorization baselines end to end
// in both modes and require *bitwise* equal predictions, at 1, 2 and 8
// worker threads (fusion groups and kernel grains depend only on shapes,
// never on the thread count). A finite-difference gradient check and a
// scalar-vs-AVX2 kernel-table comparison pin down the two layers the plan
// rests on: backward scheduling and the SIMD kernels.

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "exec/thread_pool.h"
#include "nn/kernels/kernels.h"
#include "nn/parameter.h"
#include "nn/tape.h"
#include "sim/dataset.h"

namespace o2sr {
namespace {

using nn::Tape;

sim::SimConfig SmallWorld() {
  sim::SimConfig cfg;
  cfg.city_width_m = 2500.0;
  cfg.city_height_m = 2500.0;
  cfg.num_store_types = 5;
  cfg.num_stores = 60;
  cfg.num_couriers = 30;
  cfg.num_days = 2;
  cfg.peak_orders_per_region_slot = 3.0;
  cfg.seed = 515;
  return cfg;
}

struct Fixture {
  sim::Dataset data;
  core::InteractionList interactions;
  eval::Split split;
  core::InteractionList probe;  // first 8 held-out pairs

  Fixture() : data(sim::GenerateDataset(SmallWorld())) {
    interactions = eval::BuildInteractions(data);
    split = eval::SplitInteractions(data, interactions, {0.8, /*seed=*/4});
    for (size_t i = 0; i < split.test.size() && probe.size() < 8; ++i) {
      probe.push_back(split.test[i]);
    }
  }
};

const Fixture& F() {
  static const Fixture* f = new Fixture();
  return *f;
}

core::TrainContext Ctx() {
  core::TrainContext ctx;
  ctx.data = &F().data;
  ctx.visible_orders = &F().split.train_orders;
  ctx.train = &F().split.train;
  return ctx;
}

// RAII for the process-wide tape mode so a failing ASSERT cannot leak a
// forced mode into later tests.
struct ModeGuard {
  explicit ModeGuard(Tape::Mode mode) { Tape::SetModeForTest(mode); }
  ~ModeGuard() { Tape::SetModeForTest(Tape::Mode::kEnv); }
};

enum class Model { kO2SiteRec, kCityTransfer, kBlgCoSvd };

std::unique_ptr<core::SiteRecommender> Make(Model which) {
  switch (which) {
    case Model::kO2SiteRec: {
      core::O2SiteRecConfig cfg;
      cfg.capacity.embedding_dim = 8;
      cfg.rec.embedding_dim = 16;
      cfg.rec.node_heads = 2;
      cfg.rec.time_heads = 2;
      cfg.epochs = 3;
      cfg.learning_rate = 5e-3;
      cfg.seed = 9;
      return std::make_unique<core::O2SiteRecRecommender>(cfg);
    }
    case Model::kCityTransfer:
    case Model::kBlgCoSvd: {
      baselines::BaselineConfig cfg;
      cfg.embedding_dim = 12;
      cfg.epochs = 5;
      cfg.seed = 13;
      return baselines::MakeBaseline(which == Model::kCityTransfer
                                         ? baselines::BaselineKind::kCityTransfer
                                         : baselines::BaselineKind::kBlgCoSvd,
                                     cfg);
    }
  }
  return nullptr;
}

std::vector<double> TrainAndPredict(Model which, Tape::Mode mode,
                                    int threads) {
  ModeGuard guard(mode);
  exec::ThreadPool pool(threads, "exec.plan_test");
  exec::PoolScope scope(&pool);
  auto model = Make(which);
  EXPECT_TRUE(model->Train(Ctx()).ok());
  return model->Predict(F().probe).value();
}

// Eager single-threaded training is the reference everything else must
// reproduce bit for bit.
void CheckPlannedMatchesEager(Model which) {
  const std::vector<double> want =
      TrainAndPredict(which, Tape::Mode::kEager, 1);
  ASSERT_EQ(want.size(), F().probe.size());
  for (int threads : {1, 2, 8}) {
    const std::vector<double> got =
        TrainAndPredict(which, Tape::Mode::kPlanned, threads);
    ASSERT_EQ(got.size(), want.size()) << "threads " << threads;
    for (size_t i = 0; i < want.size(); ++i) {
      // EXPECT_EQ, not NEAR: the plan may fuse and reorder the schedule
      // but never an accumulation.
      EXPECT_EQ(got[i], want[i])
          << "threads " << threads << " probe pair " << i;
    }
  }
}

TEST(PlanExecTest, O2SiteRecPlannedBitIdenticalToEager) {
  CheckPlannedMatchesEager(Model::kO2SiteRec);
}

TEST(PlanExecTest, CityTransferPlannedBitIdenticalToEager) {
  CheckPlannedMatchesEager(Model::kCityTransfer);
}

TEST(PlanExecTest, BlgCoSvdPlannedBitIdenticalToEager) {
  CheckPlannedMatchesEager(Model::kBlgCoSvd);
}

// --- gradcheck under the planned executor --------------------------------
// The fused backward (linear_act groups, scatter groups, pooled grad
// slots) must still be the true gradient. The loss composition below hits
// every fusion pattern: MatMul + bias + activation (pattern A, all three
// activations), MulColBroadcast + SegmentSum (pattern B), plus softmax,
// gather and concat around them.

using LossBuilder = std::function<nn::Value(Tape&)>;

double EvalLoss(const LossBuilder& build) {
  Tape tape;
  nn::Value loss = build(tape);
  return tape.value(loss).at(0, 0);
}

void CheckGradients(nn::ParameterStore& store, const LossBuilder& build,
                    double eps = 1e-3, double tol = 2e-2) {
  store.ZeroGrads();
  {
    Tape tape;
    nn::Value loss = build(tape);
    tape.Backward(loss);
  }
  for (const auto& p : store.params()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = EvalLoss(build);
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = EvalLoss(build);
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      const double denom =
          std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
      EXPECT_NEAR(analytic / denom, numeric / denom, tol)
          << "param " << p->name << " index " << i;
    }
  }
}

TEST(PlanExecTest, GradcheckUnderPlannedExecutor) {
  ModeGuard guard(Tape::Mode::kPlanned);
  nn::ParameterStore store;
  Rng rng(4242);
  nn::Parameter* w1 = store.CreateXavier("w1", 6, 8, rng);
  nn::Parameter* b1 = store.CreateNormal("b1", 1, 8, 0.05, rng);
  nn::Parameter* w2 = store.CreateXavier("w2", 8, 4, rng);
  nn::Parameter* b2 = store.CreateNormal("b2", 1, 4, 0.05, rng);
  nn::Parameter* w3 = store.CreateXavier("w3", 4, 3, rng);
  const nn::Tensor x = nn::Tensor::RandomNormal(10, 6, 0.8, rng);
  const nn::Tensor col = nn::Tensor::RandomNormal(10, 1, 0.5, rng);
  const std::vector<int> segment = {0, 0, 1, 1, 1, 2, 2, 3, 3, 3};

  const LossBuilder build = [&](Tape& tape) {
    nn::Value in = tape.Input(x);
    // Pattern A with all three fused shapes.
    nn::Value h1 = tape.Relu(
        tape.AddRowBroadcast(tape.MatMul(in, tape.Param(w1)), tape.Param(b1)));
    nn::Value h2 = tape.Tanh(
        tape.AddRowBroadcast(tape.MatMul(h1, tape.Param(w2)), tape.Param(b2)));
    nn::Value h3 = tape.Sigmoid(tape.MatMul(h2, tape.Param(w3)));
    // Pattern B: edgewise weighting then segment reduction.
    nn::Value weighted = tape.MulColBroadcast(h3, tape.Input(col));
    nn::Value pooled = tape.SegmentSum(weighted, segment, 4);
    return tape.MeanAll(tape.Mul(pooled, pooled));
  };
  CheckGradients(store, build);
}

// --- scalar vs AVX2 kernel tables ----------------------------------------
// The hand-written AVX2 matmul family re-tiles the loops; every element
// must still come out bit-identical to the scalar reference, including
// zero-skip behaviour (exercised by a ReLU-like sparse operand) and the
// accumulate mode. Skipped on builds/CPUs without the AVX2 table.

nn::Tensor SparseRandom(int rows, int cols, double zero_fraction, Rng& rng) {
  nn::Tensor t = nn::Tensor::RandomNormal(rows, cols, 1.0, rng);
  for (size_t i = 0; i < t.size(); ++i) {
    if (rng.Uniform(0.0, 1.0) < zero_fraction) t.data()[i] = 0.0f;
  }
  return t;
}

void ExpectSameBits(const nn::Tensor& a, const nn::Tensor& b,
                    const char* label) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << label << " flat index " << i;
  }
}

TEST(PlanExecTest, Avx2MatMulKernelsMatchScalarBitwise) {
  const nn::kernels::KernelTable* avx2 = nn::kernels::Avx2Table();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 table unavailable on this build/CPU";
  }
  const nn::kernels::KernelTable& scalar = nn::kernels::ScalarTable();
  Rng rng(77);
  // Deliberately awkward shapes: j tails of every width class (32/8/scalar)
  // and a k % 4 tail for the four-chain tb kernel.
  const int m = 13, k = 37, n = 43;
  for (double zero_fraction : {0.0, 0.6}) {
    for (bool accumulate : {false, true}) {
      const nn::Tensor a = SparseRandom(m, k, zero_fraction, rng);
      const nn::Tensor b = SparseRandom(k, n, 0.0, rng);
      const nn::Tensor at = SparseRandom(k, m, zero_fraction, rng);
      const nn::Tensor bt = SparseRandom(n, k, 0.0, rng);
      const nn::Tensor seed_c = SparseRandom(m, n, 0.0, rng);

      nn::Tensor c_s = seed_c, c_v = seed_c;
      if (!accumulate) {
        c_s.Fill(0.0f);
        c_v.Fill(0.0f);
      }
      scalar.matmul_rows(a.data(), b.data(), c_s.data(), 0, m, k, n,
                         accumulate);
      avx2->matmul_rows(a.data(), b.data(), c_v.data(), 0, m, k, n,
                        accumulate);
      ExpectSameBits(c_s, c_v, "matmul_rows");

      nn::Tensor t_s = seed_c, t_v = seed_c;
      if (!accumulate) {
        t_s.Fill(0.0f);
        t_v.Fill(0.0f);
      }
      scalar.matmul_ta_rows(at.data(), b.data(), t_s.data(), 0, m, m, k, n,
                            accumulate);
      avx2->matmul_ta_rows(at.data(), b.data(), t_v.data(), 0, m, m, k, n,
                           accumulate);
      ExpectSameBits(t_s, t_v, "matmul_ta_rows");

      nn::Tensor d_s = seed_c, d_v = seed_c;
      if (!accumulate) {
        d_s.Fill(0.0f);
        d_v.Fill(0.0f);
      }
      scalar.matmul_tb_rows(a.data(), bt.data(), d_s.data(), 0, m, k, n,
                            accumulate);
      avx2->matmul_tb_rows(a.data(), bt.data(), d_v.data(), 0, m, k, n,
                           accumulate);
      ExpectSameBits(d_s, d_v, "matmul_tb_rows");
    }
  }
}

}  // namespace
}  // namespace o2sr
