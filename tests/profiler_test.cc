// Tests of the performance-attribution profiler (obs/profiler.h): op and
// region aggregation, the determinism contract on count fields, the JSON
// report shape, trace-counter emission, and the live hooks in
// exec::ThreadPool and the tensor kernels.

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "nn/tensor.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace o2sr::obs {
namespace {

// ---------------------------------------------------------------------------
// Aggregation on a local instance

TEST(ProfilerTest, OpAggregation) {
  Profiler p;
  p.Enable(true);
  p.RecordOp("matmul", 100, 300, 50);
  p.RecordOp("matmul", 100, 300, 50);
  p.RecordOp("add", 0, 24, 6);

  const auto ops = p.OpSnapshot();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops.at("matmul").dispatches, 2u);
  EXPECT_EQ(ops.at("matmul").bytes_allocated, 200u);
  EXPECT_EQ(ops.at("matmul").bytes_moved, 600u);
  EXPECT_EQ(ops.at("matmul").items, 100u);
  EXPECT_EQ(ops.at("add").dispatches, 1u);
  EXPECT_EQ(ops.at("add").bytes_allocated, 0u);
}

TEST(ProfilerTest, RegionAggregationAndEfficiency) {
  Profiler p;
  p.Enable(true);
  // Two dispatched executions with 2 lanes each: wall 100us, lanes busy
  // 100+60 then 100+20 -> busy 280 over wall 2*2*100 = 400.
  const int64_t lanes_a[] = {100, 60};
  const int64_t lanes_b[] = {100, 20};
  p.RecordDispatchedRegion("region", /*items=*/64, /*chunks=*/8,
                           /*wall_us=*/100, lanes_a, 2);
  p.RecordDispatchedRegion("region", /*items=*/32, /*chunks=*/4,
                           /*wall_us=*/100, lanes_b, 2);
  p.RecordInlineRegion("region", /*items=*/5, /*chunks=*/1);

  const auto regions = p.RegionSnapshot();
  ASSERT_EQ(regions.size(), 1u);
  const RegionProfile& r = regions.at("region");
  EXPECT_EQ(r.regions, 3u);
  EXPECT_EQ(r.dispatched, 2u);
  EXPECT_EQ(r.inline_runs, 1u);
  EXPECT_EQ(r.chunks, 13u);
  EXPECT_EQ(r.items, 101u);
  EXPECT_EQ(r.min_items, 5u);
  EXPECT_EQ(r.max_items, 64u);
  EXPECT_EQ(r.wall_us, 200);
  EXPECT_EQ(r.busy_us, 280);
  ASSERT_EQ(r.lane_busy_us.size(), 2u);
  EXPECT_EQ(r.lane_busy_us[0], 200);
  EXPECT_EQ(r.lane_busy_us[1], 80);
  EXPECT_EQ(r.IdleUs(), 120);
  EXPECT_DOUBLE_EQ(r.Efficiency(), 280.0 / 400.0);
}

TEST(ProfilerTest, UnnamedRegionsBucketUnderKernel) {
  Profiler p;
  p.Enable(true);
  const int64_t lanes[] = {10, 10};
  p.RecordDispatchedRegion(nullptr, 16, 2, 10, lanes, 2);
  p.RecordInlineRegion(nullptr, 4, 1);
  const auto regions = p.RegionSnapshot();
  ASSERT_EQ(regions.count("(kernel)"), 1u);
  EXPECT_EQ(regions.at("(kernel)").regions, 2u);
}

TEST(ProfilerTest, DisabledRecordsNothing) {
  Profiler p;
  p.RecordOp("op", 1, 1, 1);
  const int64_t lanes[] = {1};
  p.RecordDispatchedRegion("r", 1, 1, 1, lanes, 1);
  p.RecordInlineRegion("r", 1, 1);
  EXPECT_TRUE(p.OpSnapshot().empty());
  EXPECT_TRUE(p.RegionSnapshot().empty());
}

// ---------------------------------------------------------------------------
// Report shape

TEST(ProfilerTest, ReportJsonIsParseableAndCarriesCounts) {
  Profiler p;
  p.Enable(true);
  const int64_t lanes[] = {90, 50};
  p.RecordDispatchedRegion("exec.rows", 1000, 16, 100, lanes, 2);
  p.RecordOp("tensor.matmul", 400, 1200, 2000);

  const std::string json = p.ReportJson();
  // Byte-deterministic for the same recorded data.
  EXPECT_EQ(json, p.ReportJson());

  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* region = parsed->Find("regions")->Find("exec.rows");
  ASSERT_NE(region, nullptr);
  EXPECT_DOUBLE_EQ(region->NumberOr("regions", 0), 1.0);
  EXPECT_DOUBLE_EQ(region->NumberOr("dispatched", 0), 1.0);
  EXPECT_DOUBLE_EQ(region->NumberOr("chunks", 0), 16.0);
  EXPECT_DOUBLE_EQ(region->NumberOr("items", 0), 1000.0);
  EXPECT_DOUBLE_EQ(region->NumberOr("wall_ms", -1), 0.1);
  EXPECT_DOUBLE_EQ(region->NumberOr("busy_ms", -1), 0.14);
  EXPECT_DOUBLE_EQ(region->NumberOr("idle_ms", -1), 0.06);
  ASSERT_NE(region->Find("lanes"), nullptr);
  EXPECT_EQ(region->Find("lanes")->items().size(), 2u);

  const JsonValue* op = parsed->Find("ops")->Find("tensor.matmul");
  ASSERT_NE(op, nullptr);
  EXPECT_DOUBLE_EQ(op->NumberOr("dispatches", 0), 1.0);
  EXPECT_DOUBLE_EQ(op->NumberOr("bytes_allocated", 0), 400.0);
  EXPECT_DOUBLE_EQ(op->NumberOr("bytes_moved", 0), 1200.0);
}

TEST(ProfilerTest, EmitTraceCountersProducesCounterEvents) {
  Profiler p;
  p.Enable(true);
  const int64_t lanes[] = {10, 2};
  p.RecordDispatchedRegion("exec.rows", 100, 4, 10, lanes, 2);
  p.RecordOp("tensor.add", 0, 96, 24);

  int64_t now = 7;
  TraceRecorder recorder([&now] { return now; });
  p.EmitTraceCounters(&recorder);
  const auto counters = recorder.CounterSnapshot();
  ASSERT_FALSE(counters.empty());
  bool saw_chunks = false, saw_dispatches = false;
  for (const TraceCounterEvent& c : counters) {
    if (c.name == "profile.region.exec.rows.chunks") {
      saw_chunks = true;
      EXPECT_DOUBLE_EQ(c.value, 4.0);
    }
    if (c.name == "profile.op.tensor.add.dispatches") {
      saw_dispatches = true;
      EXPECT_DOUBLE_EQ(c.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_chunks);
  EXPECT_TRUE(saw_dispatches);
}

// ---------------------------------------------------------------------------
// Live hooks: ThreadPool and tensor kernels feed Profiler::Global()

class GlobalProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Global().ResetForTest();
    Profiler::Global().Enable(true);
  }
  void TearDown() override {
    Profiler::Global().Enable(false);
    Profiler::Global().ResetForTest();
  }
};

TEST_F(GlobalProfilerTest, ThreadPoolRegionsAreAttributed) {
  exec::ThreadPool pool(4);
  std::vector<int64_t> out(100, 0);
  pool.ParallelFor(
      100, /*grain=*/10, [&](int64_t i) { out[i] = i; },
      "exec.profiler_test");

  const auto regions = Profiler::Global().RegionSnapshot();
  ASSERT_EQ(regions.count("exec.profiler_test"), 1u);
  const RegionProfile& r = regions.at("exec.profiler_test");
  EXPECT_EQ(r.regions, 1u);
  EXPECT_EQ(r.dispatched, 1u);
  EXPECT_EQ(r.inline_runs, 0u);
  EXPECT_EQ(r.chunks, 10u);
  EXPECT_EQ(r.items, 100u);
  EXPECT_EQ(r.lane_busy_us.size(), 4u);
  EXPECT_GE(r.wall_us, 0);
}

TEST_F(GlobalProfilerTest, SerialPoolRunsInline) {
  exec::ThreadPool pool(1);
  pool.ParallelFor(50, /*grain=*/10, [](int64_t) {}, "exec.serial");
  const auto regions = Profiler::Global().RegionSnapshot();
  const RegionProfile& r = regions.at("exec.serial");
  EXPECT_EQ(r.inline_runs, 1u);
  EXPECT_EQ(r.dispatched, 0u);
  EXPECT_EQ(r.chunks, 5u);
  EXPECT_EQ(r.items, 50u);
}

TEST_F(GlobalProfilerTest, CountFieldsAreThreadCountInvariant) {
  // The determinism contract ci.sh leans on: the same workload produces
  // identical count fields at any thread count (times differ, counts not).
  auto run = [](int threads) {
    Profiler::Global().ResetForTest();
    exec::ThreadPool pool(threads);
    for (int rep = 0; rep < 3; ++rep) {
      pool.ParallelFor(256, /*grain=*/16, [](int64_t) {}, "exec.invariant");
    }
    const RegionProfile r =
        Profiler::Global().RegionSnapshot().at("exec.invariant");
    return std::tuple<uint64_t, uint64_t, uint64_t>(r.regions, r.chunks,
                                                    r.items);
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(2), run(4));
}

TEST_F(GlobalProfilerTest, TensorKernelsRecordOps) {
  Rng rng(1);
  nn::Tensor a = nn::Tensor::RandomNormal(8, 4, 1.0, rng);
  nn::Tensor b = nn::Tensor::RandomNormal(4, 6, 1.0, rng);
  nn::Tensor c = nn::MatMul(a, b);
  (void)c;

  const auto ops = Profiler::Global().OpSnapshot();
  ASSERT_EQ(ops.count("tensor.matmul"), 1u);
  const OpProfile& op = ops.at("tensor.matmul");
  EXPECT_EQ(op.dispatches, 1u);
  EXPECT_EQ(op.bytes_allocated, 8u * 6u * sizeof(float));
  EXPECT_EQ(op.bytes_moved, (8u * 4u + 4u * 6u + 8u * 6u) * sizeof(float));
  EXPECT_EQ(op.items, uint64_t{2} * 8 * 4 * 6);  // 2*m*k*n flops
}

TEST_F(GlobalProfilerTest, DisabledProfilerSeesNothingFromHooks) {
  Profiler::Global().Enable(false);
  exec::ThreadPool pool(2);
  pool.ParallelFor(64, /*grain=*/8, [](int64_t) {}, "exec.off");
  Rng rng(1);
  nn::Tensor a = nn::Tensor::RandomNormal(2, 2, 1.0, rng);
  nn::Tensor b = nn::Tensor::RandomNormal(2, 2, 1.0, rng);
  (void)nn::MatMul(a, b);
  EXPECT_TRUE(Profiler::Global().RegionSnapshot().empty());
  EXPECT_TRUE(Profiler::Global().OpSnapshot().empty());
}

}  // namespace
}  // namespace o2sr::obs
