#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "sim/dataset.h"

namespace o2sr::sim {
namespace {

SimConfig SmallConfig() {
  SimConfig cfg;
  cfg.city_width_m = 4000.0;
  cfg.city_height_m = 4000.0;
  cfg.num_store_types = 12;
  cfg.num_stores = 150;
  cfg.num_couriers = 80;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 17;
  return cfg;
}

TEST(PeriodTest, HourMapping) {
  EXPECT_EQ(PeriodOfHour(7), Period::kMorning);
  EXPECT_EQ(PeriodOfHour(12), Period::kNoonRush);
  EXPECT_EQ(PeriodOfHour(15), Period::kAfternoon);
  EXPECT_EQ(PeriodOfHour(18), Period::kEveningRush);
  EXPECT_EQ(PeriodOfHour(22), Period::kNight);
  EXPECT_EQ(PeriodOfHour(3), Period::kNight);
}

TEST(PeriodTest, SlotMapping) {
  EXPECT_EQ(PeriodOfSlot(0), Period::kNight);     // 00-02
  EXPECT_EQ(PeriodOfSlot(3), Period::kMorning);   // 06-08
  EXPECT_EQ(PeriodOfSlot(5), Period::kNoonRush);  // 10-12
  EXPECT_EQ(PeriodOfSlot(7), Period::kAfternoon); // 14-16
  EXPECT_EQ(PeriodOfSlot(9), Period::kEveningRush);
  EXPECT_EQ(PeriodOfSlot(11), Period::kNight);
}

TEST(PeriodTest, NamesDistinct) {
  std::set<std::string> names;
  for (int p = 0; p < kNumPeriods; ++p) {
    names.insert(PeriodName(static_cast<Period>(p)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumPeriods));
}

TEST(TypeCatalogTest, SizeAndNormalization) {
  Rng rng(1);
  const auto catalog = BuildTypeCatalog(30, rng);
  ASSERT_EQ(catalog.size(), 30u);
  double popularity = 0.0;
  for (const auto& t : catalog) popularity += t.popularity;
  EXPECT_NEAR(popularity, 1.0, 1e-9);
}

TEST(TypeCatalogTest, NamedTypesComeFirst) {
  Rng rng(1);
  const auto catalog = BuildTypeCatalog(8, rng);
  EXPECT_EQ(catalog[0].name, "light meal");
  EXPECT_EQ(catalog[3].name, "steamed buns");
  EXPECT_EQ(catalog[5].name, "fried chicken");
}

TEST(TypeCatalogTest, ArchetypeProfilesPeakInTheRightSlots) {
  const auto breakfast = ArchetypeSlotActivity(TypeArchetype::kBreakfast);
  EXPECT_EQ(std::distance(breakfast.begin(),
                          std::max_element(breakfast.begin(),
                                           breakfast.end())),
            4);  // 08-10
  const auto lunch = ArchetypeSlotActivity(TypeArchetype::kLunchMeal);
  EXPECT_EQ(std::distance(lunch.begin(),
                          std::max_element(lunch.begin(), lunch.end())),
            5);  // 10-12
  const auto night = ArchetypeSlotActivity(TypeArchetype::kLateNight);
  EXPECT_GE(std::distance(night.begin(),
                          std::max_element(night.begin(), night.end())),
            10);  // late evening
}

TEST(TypeCatalogTest, ProfilesHaveMeanAboutOne) {
  Rng rng(2);
  const auto catalog = BuildTypeCatalog(20, rng);
  for (const auto& t : catalog) {
    EXPECT_NEAR(Mean(t.slot_activity), 1.0, 0.16);
  }
}

TEST(CityTest, DensityNormalizedAndDowntownHeavy) {
  SimConfig cfg = SmallConfig();
  Rng rng(cfg.seed);
  const CityModel city = GenerateCity(cfg, rng);
  double sum = 0.0;
  for (double d : city.density) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Central region denser than corner region.
  const auto center = city.grid.RegionOf({2000.0, 2000.0});
  EXPECT_GT(city.density[center], city.density[0]);
}

TEST(CityTest, DemographicsRowsNormalized) {
  SimConfig cfg = SmallConfig();
  Rng rng(cfg.seed);
  const CityModel city = GenerateCity(cfg, rng);
  for (const auto& row : city.demographics) {
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9);
  }
}

TEST(CityTest, GeneratesPoisAndRoads) {
  SimConfig cfg = SmallConfig();
  Rng rng(cfg.seed);
  const CityModel city = GenerateCity(cfg, rng);
  EXPECT_GT(city.pois.size(), 100u);
  EXPECT_GT(city.roads.intersections.size(), 5u);
  EXPECT_GT(city.roads.roads.size(), 4u);
}

TEST(StoreGenTest, StoresWithinCityAndConsistentRegions) {
  SimConfig cfg = SmallConfig();
  Rng rng(cfg.seed);
  const CityModel city = GenerateCity(cfg, rng);
  const auto catalog = BuildTypeCatalog(cfg.num_store_types, rng);
  const auto stores = GenerateStores(cfg, city, catalog, rng);
  ASSERT_EQ(stores.size(), static_cast<size_t>(cfg.num_stores));
  for (const auto& s : stores) {
    EXPECT_GE(s.location.x, 0.0);
    EXPECT_LT(s.location.x, cfg.city_width_m);
    EXPECT_EQ(city.grid.RegionOf(s.location), s.region);
    EXPECT_GE(s.type, 0);
    EXPECT_LT(s.type, cfg.num_store_types);
    EXPECT_GT(s.quality, 0.0);
  }
}

class DatasetTest : public ::testing::Test {
 protected:
  static const Dataset& Data() {
    static const Dataset* data = new Dataset(GenerateDataset(SmallConfig()));
    return *data;
  }
};

TEST_F(DatasetTest, ProducesOrders) {
  EXPECT_GT(Data().orders.size(), 1000u);
}

TEST_F(DatasetTest, DeterministicForSameSeed) {
  const Dataset again = GenerateDataset(SmallConfig());
  ASSERT_EQ(again.orders.size(), Data().orders.size());
  for (size_t i = 0; i < 50 && i < again.orders.size(); ++i) {
    EXPECT_EQ(again.orders[i].store_id, Data().orders[i].store_id);
    EXPECT_DOUBLE_EQ(again.orders[i].delivery_min,
                     Data().orders[i].delivery_min);
  }
}

TEST_F(DatasetTest, DifferentSeedsDiffer) {
  SimConfig cfg = SmallConfig();
  cfg.seed = 99;
  const Dataset other = GenerateDataset(cfg);
  EXPECT_NE(other.orders.size(), Data().orders.size());
}

TEST_F(DatasetTest, OrderFieldsAreConsistent) {
  for (const Order& o : Data().orders) {
    EXPECT_LT(o.creation_min, o.acceptance_min);
    EXPECT_LT(o.acceptance_min, o.pickup_min);
    EXPECT_LT(o.pickup_min, o.delivery_min);
    EXPECT_GE(o.distance_m, 0.0);
    EXPECT_EQ(Data().city.grid.RegionOf(o.customer_location),
              o.customer_region);
    EXPECT_EQ(Data().stores[o.store_id].region, o.store_region);
    EXPECT_EQ(Data().stores[o.store_id].type, o.type);
    EXPECT_GE(o.day, 0);
    EXPECT_LT(o.day, Data().config.num_days);
    EXPECT_GE(o.slot, 0);
    EXPECT_LT(o.slot, kSlotsPerDay);
    // Creation falls inside the slot.
    const double day_min = o.creation_min - o.day * 24.0 * 60.0;
    EXPECT_GE(day_min, o.slot * kSlotMinutes);
    EXPECT_LE(day_min, (o.slot + 1) * kSlotMinutes);
  }
}

TEST_F(DatasetTest, DeliveryTimesAreRealistic) {
  double total = 0.0;
  for (const Order& o : Data().orders) {
    EXPECT_GT(o.delivery_minutes(), 3.0);
    EXPECT_LT(o.delivery_minutes(), 150.0);
    total += o.delivery_minutes();
  }
  const double mean = total / Data().orders.size();
  // Paper context: 30-60 minute on-demand delivery.
  EXPECT_GT(mean, 12.0);
  EXPECT_LT(mean, 60.0);
}

TEST_F(DatasetTest, DistancesRespectMaximumScope) {
  const double max_scope = Data().config.base_scope_m *
                           Data().config.max_scope_factor;
  for (const Order& o : Data().orders) {
    // Customer sampled within the region, so allow one cell of slack.
    EXPECT_LE(o.distance_m, max_scope + Data().config.cell_m);
  }
}

TEST_F(DatasetTest, RushHourHasLowerSupplyDemandRatio) {
  // Aggregate supply-demand ratio per slot (Fig. 1): the noon-rush ratio
  // must be lower than the early-afternoon ratio.
  std::vector<double> couriers(kSlotsPerDay, 0.0), orders(kSlotsPerDay, 0.0);
  for (const SlotStats& s : Data().slot_stats) {
    couriers[s.slot] += s.active_couriers;
    orders[s.slot] += s.orders;
  }
  auto ratio = [&](int slot) {
    return orders[slot] > 0 ? couriers[slot] / orders[slot] : 1e9;
  };
  EXPECT_LT(ratio(5), ratio(7));   // noon rush < afternoon
  EXPECT_LT(ratio(9), ratio(7));   // evening rush < afternoon
}

TEST_F(DatasetTest, RushHourHasLongerDeliveryTimes) {
  std::vector<double> sum(kNumPeriods, 0.0);
  std::vector<int> count(kNumPeriods, 0);
  for (const Order& o : Data().orders) {
    sum[static_cast<int>(o.period())] += o.delivery_minutes();
    ++count[static_cast<int>(o.period())];
  }
  ASSERT_GT(count[static_cast<int>(Period::kNoonRush)], 100);
  ASSERT_GT(count[static_cast<int>(Period::kAfternoon)], 100);
  const double noon = sum[1] / count[1];
  const double afternoon = sum[2] / count[2];
  EXPECT_GT(noon, afternoon);
}

TEST_F(DatasetTest, ScopeShrinksAtRushHours) {
  const auto& scope = Data().scope_factor_per_period;
  EXPECT_LT(scope[static_cast<int>(Period::kNoonRush)],
            scope[static_cast<int>(Period::kAfternoon)]);
  EXPECT_LT(scope[static_cast<int>(Period::kEveningRush)],
            scope[static_cast<int>(Period::kNight)]);
}

TEST_F(DatasetTest, BreakfastTypesPeakInTheMorning) {
  // Orders of "steamed buns" (id 3, breakfast archetype) should be more
  // concentrated in the morning period than "fried chicken" (id 5,
  // late-night archetype).
  std::map<int, std::vector<int>> per_type_period;
  for (const Order& o : Data().orders) {
    auto& v = per_type_period[o.type];
    v.resize(kNumPeriods, 0);
    ++v[static_cast<int>(o.period())];
  }
  auto morning_share = [&](int type) {
    const auto& v = per_type_period[type];
    double total = 0.0;
    for (int c : v) total += c;
    return total > 0 ? v[static_cast<int>(Period::kMorning)] / total : 0.0;
  };
  EXPECT_GT(morning_share(3), morning_share(5) * 2.0);
}

TEST_F(DatasetTest, SupplyDemandRatioCorrelatesNegativelyWithDeliveryTime) {
  // Fig. 2: per-slot supply-demand ratio vs mean delivery time.
  std::vector<double> ratios, times;
  for (const SlotStats& s : Data().slot_stats) {
    if (s.orders < 20) continue;
    ratios.push_back(static_cast<double>(s.active_couriers) / s.orders);
    times.push_back(s.mean_delivery_minutes);
  }
  ASSERT_GT(ratios.size(), 10u);
  EXPECT_LT(PearsonCorrelation(ratios, times), -0.4);
}

TEST(DatasetTrajectoryTest, TrajectoriesFollowOrders) {
  SimConfig cfg = SmallConfig();
  cfg.num_days = 1;
  cfg.generate_trajectories = true;
  const Dataset data = GenerateDataset(cfg);
  ASSERT_EQ(data.trajectories.size(), data.orders.size());
  for (size_t i = 0; i < std::min<size_t>(data.trajectories.size(), 200);
       ++i) {
    const Trajectory& t = data.trajectories[i];
    const Order& o = data.orders[t.order_id];
    ASSERT_GE(t.points.size(), 2u);
    EXPECT_EQ(t.courier_id, o.courier_id);
    // Starts at the store, ends at the customer.
    EXPECT_NEAR(t.points.front().location.x, o.store_location.x, 1e-6);
    EXPECT_NEAR(t.points.back().location.x, o.customer_location.x, 1e-6);
    EXPECT_NEAR(t.points.front().time_min, o.pickup_min, 1e-6);
    EXPECT_NEAR(t.points.back().time_min, o.delivery_min, 1e-6);
    // Timestamps increase.
    for (size_t k = 1; k < t.points.size(); ++k) {
      EXPECT_GT(t.points[k].time_min, t.points[k - 1].time_min);
    }
  }
}

TEST(DatasetPresetTest, OpenDataPresetIsSparser) {
  SimConfig cfg = SmallConfig();
  const Dataset dense = GenerateDataset(cfg);
  cfg.preset = SimulationPreset::kOpenData;
  const Dataset sparse = GenerateDataset(cfg);
  EXPECT_LT(sparse.orders.size(), dense.orders.size() * 0.7);
}

}  // namespace
}  // namespace o2sr::sim
