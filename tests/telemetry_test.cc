// Training telemetry: the guarded trainer emits one TrainEvent per
// completed epoch plus one per recovery/resume, TelemetryStream persists
// the stream as JSONL, and eval::RunOnce wires the stream through to the
// caller.

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "nn/parameter.h"
#include "nn/trainer.h"
#include "obs/telemetry.h"

namespace o2sr {
namespace {

using obs::TrainEvent;
using obs::TrainEventKind;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Same synthetic-run scaffolding as tests/fault_tolerance_test.cc: the
// runner sees a scripted loss and whatever the hook leaves in the
// gradients.
struct SyntheticRun {
  nn::ParameterStore store;
  std::unique_ptr<nn::AdamOptimizer> adam;

  explicit SyntheticRun(double lr = 1e-2) {
    Rng rng(5);
    store.CreateXavier("w", 2, 2, rng);
    nn::AdamOptimizer::Options opt;
    opt.learning_rate = lr;
    adam = std::make_unique<nn::AdamOptimizer>(&store, opt);
  }
};

TEST(TelemetryTest, JsonLineFormat) {
  TrainEvent event;
  event.kind = TrainEventKind::kEpoch;
  event.epoch = 3;
  event.loss = 0.25;
  event.grad_norm = 0.5;
  event.learning_rate = 0.003;
  event.recoveries = 0;
  EXPECT_EQ(obs::TrainEventToJsonLine(event),
            "{\"event\":\"epoch\",\"epoch\":3,\"loss\":0.25,"
            "\"grad_norm\":0.5,\"learning_rate\":0.003,\"recoveries\":0}");

  event.kind = TrainEventKind::kRecovery;
  event.recoveries = 1;
  event.note = "non-finite loss";
  EXPECT_NE(obs::TrainEventToJsonLine(event).find(
                "\"event\":\"recovery\""),
            std::string::npos);
  EXPECT_NE(obs::TrainEventToJsonLine(event).find(
                "\"note\":\"non-finite loss\""),
            std::string::npos);
}

TEST(TelemetryTest, CleanRunEmitsOneEpochEventPerEpoch) {
  SyntheticRun run;
  obs::TelemetryStream stream;
  nn::TrainHooks hooks;
  hooks.on_event = [&](const TrainEvent& e) { stream.Append(e); };
  const nn::EpochFn epoch_fn = [](int epoch) { return 1.0 / (1.0 + epoch); };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(), nullptr, 6,
                                     epoch_fn, {}, hooks, &report)
                  .ok());
  EXPECT_EQ(stream.CountKind(TrainEventKind::kEpoch), 6);
  EXPECT_EQ(stream.CountKind(TrainEventKind::kRecovery), 0);
  // The report carries the identical stream.
  ASSERT_EQ(report.events.size(), stream.events().size());
  for (size_t i = 0; i < report.events.size(); ++i) {
    EXPECT_EQ(obs::TrainEventToJsonLine(report.events[i]),
              obs::TrainEventToJsonLine(stream.events()[i]));
  }
  // Epoch numbers are consecutive, losses match the script.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(stream.events()[i].epoch, i);
    EXPECT_DOUBLE_EQ(stream.events()[i].loss, 1.0 / (1.0 + i));
    EXPECT_GT(stream.events()[i].learning_rate, 0.0);
  }
}

TEST(TelemetryTest, InjectedNaNEmitsRecoveryEventToJsonl) {
  SyntheticRun run(/*lr=*/1e-2);
  const std::string path = TempPath("telemetry_nan.jsonl");
  obs::TelemetryStream stream;
  ASSERT_TRUE(stream.OpenFile(path).ok());

  bool poisoned = false;
  nn::TrainHooks hooks;
  hooks.on_event = [&](const TrainEvent& e) { stream.Append(e); };
  hooks.post_backward = [&](int epoch, nn::ParameterStore& store) {
    if (epoch == 2 && !poisoned) {
      poisoned = true;
      store.params()[0]->grad.at(0, 0) =
          std::numeric_limits<float>::quiet_NaN();
    }
  };
  const nn::EpochFn epoch_fn = [](int epoch) { return 1.0 / (1.0 + epoch); };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(), nullptr, 5,
                                     epoch_fn, {}, hooks, &report)
                  .ok());
  EXPECT_TRUE(poisoned);
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(stream.CountKind(TrainEventKind::kEpoch), 5);
  ASSERT_EQ(stream.CountKind(TrainEventKind::kRecovery), 1);

  // The recovery record names the trip and the post-backoff rate.
  const TrainEvent* recovery = nullptr;
  for (const TrainEvent& e : stream.events()) {
    if (e.kind == TrainEventKind::kRecovery) recovery = &e;
  }
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->epoch, 2);
  EXPECT_EQ(recovery->recoveries, 1);
  EXPECT_DOUBLE_EQ(recovery->learning_rate, 0.5e-2);
  EXPECT_NE(recovery->note.find("non-finite gradient"), std::string::npos)
      << recovery->note;

  // JSONL file: one line per event (5 epochs + 1 recovery), each a JSON
  // object with the event field first.
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 6u);
  int recovery_lines = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.rfind("{\"event\":\"", 0), 0u) << line;
    if (line.find("\"event\":\"recovery\"") != std::string::npos) {
      ++recovery_lines;
    }
  }
  EXPECT_EQ(recovery_lines, 1);
  std::remove(path.c_str());
}

TEST(TelemetryTest, ResumeEmitsResumeEvent) {
  const std::string ckpt = TempPath("telemetry_resume.ckpt");
  std::remove(ckpt.c_str());
  nn::GuardrailOptions options;
  options.checkpoint_path = ckpt;
  options.checkpoint_every = 2;
  const nn::EpochFn epoch_fn = [](int epoch) { return 1.0 / (1.0 + epoch); };

  {  // First run writes the checkpoint.
    SyntheticRun run;
    ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(), nullptr, 4,
                                       epoch_fn, options, {}, nullptr)
                    .ok());
  }

  SyntheticRun resumed;
  obs::TelemetryStream stream;
  nn::TrainHooks hooks;
  hooks.on_event = [&](const TrainEvent& e) { stream.Append(e); };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&resumed.store, resumed.adam.get(),
                                     nullptr, 8, epoch_fn, options, hooks,
                                     &report)
                  .ok());
  EXPECT_TRUE(report.resumed);
  ASSERT_EQ(stream.CountKind(TrainEventKind::kResume), 1);
  const TrainEvent& resume = stream.events().front();
  EXPECT_EQ(resume.kind, TrainEventKind::kResume);
  EXPECT_NE(resume.note.find(ckpt), std::string::npos) << resume.note;
  // Only the remaining epochs re-run.
  EXPECT_EQ(stream.CountKind(TrainEventKind::kEpoch), report.epochs_run);
  EXPECT_LT(report.epochs_run, 8);
  std::remove(ckpt.c_str());
}

// End-to-end: RunOnce threads the telemetry stream from the real model's
// guarded training out to the caller.
TEST(TelemetryTest, RunOnceStreamsModelTelemetry) {
  sim::SimConfig cfg;
  cfg.city_width_m = 3500.0;
  cfg.city_height_m = 3500.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 140;
  cfg.num_couriers = 60;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 51;
  const sim::Dataset data = sim::GenerateDataset(cfg);
  const eval::Split split = eval::SplitInteractions(
      data, eval::BuildInteractions(data), {0.8, /*seed=*/2});

  core::O2SiteRecConfig model_cfg;
  model_cfg.capacity.embedding_dim = 8;
  model_cfg.rec.embedding_dim = 16;
  model_cfg.rec.node_heads = 2;
  model_cfg.rec.time_heads = 2;
  model_cfg.epochs = 6;
  model_cfg.learning_rate = 5e-3;
  core::O2SiteRecRecommender model(model_cfg);

  eval::EvalOptions opts;
  opts.min_candidates = 5;
  obs::TelemetryStream stream;
  nn::TrainReport report;
  ASSERT_TRUE(
      eval::RunOnce(model, data, split, opts, &report, &stream).ok());
  // The recommender trains the capacity model and the recommendation model;
  // at least the configured epochs show up, each with a finite loss.
  EXPECT_GE(stream.CountKind(TrainEventKind::kEpoch), model_cfg.epochs);
  EXPECT_EQ(report.events.size(), stream.events().size());
  for (const TrainEvent& e : stream.events()) {
    if (e.kind != TrainEventKind::kEpoch) continue;
    EXPECT_TRUE(std::isfinite(e.loss));
    EXPECT_GE(e.grad_norm, 0.0);
    EXPECT_GT(e.learning_rate, 0.0);
  }
}

}  // namespace
}  // namespace o2sr
