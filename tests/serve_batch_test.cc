// Golden equivalence of the batched serving path (DESIGN.md §14):
// RankSitesBatch({r1..rn}) must return bit-identical responses — ranks,
// scores, tiers, epochs, and the cache state it leaves behind — to calling
// Rank(r1)..Rank(rn) in order on the same thread. Two engines with
// identical options are driven through the same request sequence, one
// serially and one batched, and every observable is compared: response
// payloads, error codes, engine counters, and per-shard cache statistics.

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace o2sr::serve {
namespace {

using common::StatusCode;
using common::StatusOr;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Scores depend on one restorable parameter, so a snapshot swap observably
// changes what the engine serves: score(region, type) = scale * (1 +
// region + 100 * type).
class ScaledStub : public core::SiteRecommender {
 public:
  explicit ScaledStub(int num_regions, float scale)
      : num_regions_(num_regions) {
    store_.CreateZeros("scaled.scale", 1, 1);
    store_.params()[0]->value.Fill(scale);
  }

  std::string Name() const override { return "ScaledStub"; }
  common::Status Train(const core::TrainContext&) override {
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    std::vector<double> out;
    out.reserve(pairs.size());
    for (const core::Interaction& it : pairs) {
      if (it.type < 0 || it.type >= 10) {
        return common::InvalidArgumentError("scaled stub: unknown type " +
                                            std::to_string(it.type));
      }
      out.push_back(Score(scale(), it.region, it.type));
    }
    return out;
  }
  const nn::ParameterStore* parameter_store() const override {
    return &store_;
  }
  nn::ParameterStore* mutable_parameter_store() override { return &store_; }
  bool CanScoreRegion(int region) const override {
    return region >= 0 && region < num_regions_;
  }

  double scale() const {
    return static_cast<double>(store_.params()[0]->value.at(0, 0));
  }
  static double Score(double scale, int region, int type) {
    return scale * (1.0 + region + 100.0 * type);
  }

 private:
  int num_regions_;
  nn::ParameterStore store_;
};

constexpr uint64_t kConfigHash = 42;

std::string ExportScaled(const char* name, float scale) {
  ScaledStub source(10, scale);
  SnapshotMeta meta;
  meta.model_name = "ScaledStub";
  meta.config_hash = kConfigHash;
  meta.num_regions = 10;
  meta.num_types = 10;
  const std::string path = TempPath(name);
  EXPECT_TRUE(ExportSnapshot(path, meta, source).ok());
  return path;
}

RankRequest Request(int type, std::vector<int> candidates, int k) {
  RankRequest request;
  request.type = type;
  request.candidates = std::move(candidates);
  request.k = k;
  return request;
}

PopularityPrior TypeOnePrior() {
  core::InteractionList observed;
  for (const auto& [region, orders] :
       std::vector<std::pair<int, double>>{{0, 5.0}, {1, 10.0}, {2, 20.0}}) {
    core::Interaction it;
    it.region = region;
    it.type = 1;
    it.orders = orders;
    observed.push_back(it);
  }
  return BuildPopularityPrior(10, observed);
}

// Engine options pinned so both engines are structurally identical and
// independent of the host's core count / environment.
ServingOptions PinnedOptions() {
  ServingOptions options;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  options.num_shards = 4;
  options.health_recovery_streak = 2;
  return options;
}

std::vector<StatusOr<RankResponse>> DriveSerial(
    const ServingEngine& engine, const std::vector<RankRequest>& requests) {
  std::vector<StatusOr<RankResponse>> out;
  out.reserve(requests.size());
  for (const RankRequest& request : requests) {
    out.push_back(engine.Rank(request));
  }
  return out;
}

void ExpectSameResponses(const std::vector<StatusOr<RankResponse>>& serial,
                         const std::vector<StatusOr<RankResponse>>& batched) {
  ASSERT_EQ(serial.size(), batched.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    ASSERT_EQ(serial[i].ok(), batched[i].ok())
        << "serial: " << serial[i].status()
        << " batched: " << batched[i].status();
    if (!serial[i].ok()) {
      EXPECT_EQ(serial[i].status().code(), batched[i].status().code());
      continue;
    }
    const RankResponse& a = *serial[i];
    const RankResponse& b = *batched[i];
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.epoch, b.epoch);
    ASSERT_EQ(a.sites.size(), b.sites.size());
    for (size_t j = 0; j < a.sites.size(); ++j) {
      EXPECT_EQ(a.sites[j].region, b.sites[j].region) << "rank " << j;
      // Bitwise: the contract is bit-identical scores, not approximately
      // equal ones.
      EXPECT_EQ(a.sites[j].score, b.sites[j].score) << "rank " << j;
    }
  }
}

void ExpectSameCacheStats(const ScoreCache::Stats& a,
                          const ScoreCache::Stats& b) {
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.stale_hits, b.stale_hits);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.insertions, b.insertions);
}

// The full observable engine state the batch may not perturb: global
// counters and the aggregate cache state its requests evolved.
void ExpectSameEngineState(const ServingEngine& serial,
                           const ServingEngine& batched) {
  EXPECT_EQ(serial.requests_count(), batched.requests_count());
  EXPECT_EQ(serial.shed_count(), batched.shed_count());
  EXPECT_EQ(serial.pairs_scored_count(), batched.pairs_scored_count());
  EXPECT_EQ(serial.degraded_count(), batched.degraded_count());
  EXPECT_EQ(serial.health(), batched.health());
  EXPECT_EQ(serial.epoch(), batched.epoch());
  ExpectSameCacheStats(serial.CacheStats(), batched.CacheStats());
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::FaultInjector::ResetGlobalForTest("");
  }
};

TEST_F(BatchEquivalenceTest, EmptyBatchReturnsEmptyAndTouchesNothing) {
  ScaledStub model(10, 1.0f);
  const auto engine = ServingEngine::Create(&model, PinnedOptions()).value();
  const auto responses = engine->RankSitesBatch({});
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(engine->requests_count(), 0u);
  EXPECT_EQ(engine->TotalShardStats().batches, 0u);
}

TEST_F(BatchEquivalenceTest, SingleElementBatchMatchesRankColdAndWarm) {
  ScaledStub serial_model(10, 1.0f);
  ScaledStub batched_model(10, 1.0f);
  const auto serial =
      ServingEngine::Create(&serial_model, PinnedOptions()).value();
  const auto batched =
      ServingEngine::Create(&batched_model, PinnedOptions()).value();

  const RankRequest request = Request(1, {3, 0, 7, 3}, 3);
  // Cold, then warm (second issue answers from the cache both engines just
  // filled).
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(round == 0 ? "cold" : "warm");
    const auto a = DriveSerial(*serial, {request});
    const auto b = batched->RankSitesBatch(std::span(&request, 1));
    ExpectSameResponses(a, b);
    ExpectSameEngineState(*serial, *batched);
  }
  // The warm round hit: same number of hits on both sides, and non-zero.
  EXPECT_GT(batched->CacheStats().hits, 0u);
}

TEST_F(BatchEquivalenceTest, ColdWarmMixEquivalence) {
  ScaledStub serial_model(10, 1.0f);
  ScaledStub batched_model(10, 1.0f);
  const auto serial =
      ServingEngine::Create(&serial_model, PinnedOptions()).value();
  const auto batched =
      ServingEngine::Create(&batched_model, PinnedOptions()).value();

  // Overlapping candidate sets: later requests hit entries earlier
  // requests of the SAME span inserted — the batch must evolve the cache
  // request by request exactly like the serial loop.
  std::vector<RankRequest> requests;
  for (int i = 0; i < 12; ++i) {
    const int type = i % 3;
    requests.push_back(
        Request(type, {i % 10, (i + 3) % 10, (i + 6) % 10, 2}, 3));
  }
  const auto a = DriveSerial(*serial, requests);
  const auto b = batched->RankSitesBatch(requests);
  ExpectSameResponses(a, b);
  ExpectSameEngineState(*serial, *batched);

  // The batch side did it in one batch call holding the accounting.
  EXPECT_EQ(batched->TotalShardStats().batches, 1u);
  EXPECT_EQ(batched->TotalShardStats().requests, requests.size());
  EXPECT_EQ(serial->TotalShardStats().batches, 0u);
}

TEST_F(BatchEquivalenceTest, DegradedMixEquivalence) {
  // Scorer down: type-1 requests fall to the prior, a request only the
  // scorer could answer exhausts the ladder and fails — identically in
  // both paths, including the failure's position in the result vector.
  ScaledStub serial_model(10, 1.0f);
  ScaledStub batched_model(10, 1.0f);
  ServingOptions options = PinnedOptions();
  options.cache_capacity = 0;  // no stale rung: ladder is fresh -> prior
  options.prior = TypeOnePrior();
  const auto serial = ServingEngine::Create(&serial_model, options).value();
  const auto batched = ServingEngine::Create(&batched_model, options).value();

  const std::vector<RankRequest> requests = {
      Request(1, {0, 1, 2}, 3),  // prior answers
      Request(1, {4}, 1),        // no rung answers -> scorer error surfaces
      Request(1, {2, 0}, 2),     // prior answers
  };

  common::FaultInjector::ResetGlobalForTest("score=error:1.0");
  const auto a = DriveSerial(*serial, requests);
  const auto b = batched->RankSitesBatch(requests);
  ExpectSameResponses(a, b);
  ExpectSameEngineState(*serial, *batched);

  ASSERT_TRUE(a[0].ok());
  EXPECT_EQ(a[0]->tier, ServeTier::kPrior);
  EXPECT_EQ(a[1].status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(batched->health(), ServeHealth::kDegraded);
}

TEST_F(BatchEquivalenceTest, StaleCacheMixEquivalenceAcrossASwap) {
  // Warm epoch-1 entries, promote epoch 2 on both engines from the same
  // snapshot, then fail fresh scoring: warm keys answer from the stale
  // epoch-1 entries, cold keys exhaust the ladder — identically.
  ScaledStub serial_model(10, 1.0f);
  ScaledStub batched_model(10, 1.0f);
  const auto serial =
      ServingEngine::Create(&serial_model, PinnedOptions()).value();
  const auto batched =
      ServingEngine::Create(&batched_model, PinnedOptions()).value();

  const std::vector<RankRequest> warm = {Request(1, {0, 1, 2}, 3),
                                         Request(2, {5, 6}, 2)};
  ExpectSameResponses(DriveSerial(*serial, warm),
                      batched->RankSitesBatch(warm));

  const std::string path = ExportScaled("batch_stale.snap", 3.0f);
  ASSERT_TRUE(serial
                  ->SwapSnapshot(path, std::make_unique<ScaledStub>(10, 0.0f),
                                 kConfigHash)
                  ->promoted);
  ASSERT_TRUE(batched
                  ->SwapSnapshot(path, std::make_unique<ScaledStub>(10, 0.0f),
                                 kConfigHash)
                  ->promoted);

  common::FaultInjector::ResetGlobalForTest("score=error:1.0");
  const std::vector<RankRequest> mixed = {
      Request(1, {0, 1, 2}, 3),  // stale hit (epoch-1 entries)
      Request(3, {0, 1}, 2),     // cold + no prior -> ladder exhausted
      Request(2, {5, 6}, 2),     // stale hit
  };
  const auto a = DriveSerial(*serial, mixed);
  const auto b = batched->RankSitesBatch(mixed);
  ExpectSameResponses(a, b);
  ExpectSameEngineState(*serial, *batched);

  ASSERT_TRUE(a[0].ok());
  EXPECT_EQ(a[0]->tier, ServeTier::kStaleCache);
  EXPECT_EQ(a[0]->epoch, 2u);
  EXPECT_EQ(a[0]->sites[0].score, ScaledStub::Score(1.0, 2, 1));
  EXPECT_EQ(a[1].status().code(), StatusCode::kUnavailable);
}

TEST_F(BatchEquivalenceTest, DeadlineExpiredAndBadKFailInPlace) {
  ScaledStub serial_model(10, 1.0f);
  ScaledStub batched_model(10, 1.0f);
  const auto serial =
      ServingEngine::Create(&serial_model, PinnedOptions()).value();
  const auto batched =
      ServingEngine::Create(&batched_model, PinnedOptions()).value();

  std::vector<RankRequest> requests;
  requests.push_back(Request(1, {0, 1, 2}, 3));
  RankRequest expired = Request(1, {0, 1, 2}, 3);
  expired.deadline = Deadline::AfterMs(-1.0);  // already past at admission
  requests.push_back(expired);
  requests.push_back(Request(2, {4, 5}, -1));  // contract violation
  requests.push_back(Request(1, {0, 1}, 2));   // healthy tail after failures

  const auto a = DriveSerial(*serial, requests);
  const auto b = batched->RankSitesBatch(requests);
  ExpectSameResponses(a, b);
  ExpectSameEngineState(*serial, *batched);

  EXPECT_TRUE(a[0].ok());
  EXPECT_EQ(a[1].status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(a[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(a[3].ok());
  EXPECT_EQ(batched->shed_count(), 1u);
}

TEST_F(BatchEquivalenceTest, BatchHoldsOneAdmissionSlotForTheWholeSpan) {
  // max_inflight = 1 and a 6-request batch: the batch holds a single slot,
  // so every request in it is admitted (the serial loop admits each
  // sequentially — same outcome, which is the point).
  ScaledStub model(10, 1.0f);
  ServingOptions options = PinnedOptions();
  options.max_inflight = 1;
  const auto engine = ServingEngine::Create(&model, options).value();

  std::vector<RankRequest> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(Request(1, {0, 1, 2}, 3));
  const auto responses = engine->RankSitesBatch(requests);
  ASSERT_EQ(responses.size(), 6u);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].ok()) << i << ": " << responses[i].status();
  }
  EXPECT_EQ(engine->shed_count(), 0u);
  EXPECT_EQ(engine->TotalShardStats().batches, 1u);
  EXPECT_EQ(engine->inflight(), 0);  // slot released with the batch
}

TEST_F(BatchEquivalenceTest, LameDuckShedsEveryBatchedRequest) {
  ScaledStub model(10, 1.0f);
  const auto engine = ServingEngine::Create(&model, PinnedOptions()).value();
  engine->EnterLameDuck();
  const std::vector<RankRequest> requests = {Request(1, {0, 1}, 2),
                                             Request(2, {3}, 1)};
  const auto responses = engine->RankSitesBatch(requests);
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& response : responses) {
    EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(engine->shed_count(), 2u);
}

}  // namespace
}  // namespace o2sr::serve
