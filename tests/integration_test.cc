// End-to-end integration: the full pipeline (simulate -> split -> train ->
// evaluate) at small scale, checking the qualitative relationships the
// paper's evaluation rests on.

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"

namespace o2sr {
namespace {

struct Pipeline {
  sim::Dataset data;
  eval::Split split;
  eval::EvalOptions opts;

  Pipeline() : data(sim::GenerateDataset(Config())) {
    split = eval::SplitInteractions(data, eval::BuildInteractions(data),
                                    {0.8, /*seed=*/4});
    opts.min_candidates = 8;
  }

  static sim::SimConfig Config() {
    sim::SimConfig cfg;
    cfg.city_width_m = 5500.0;
    cfg.city_height_m = 5500.0;
    cfg.num_store_types = 10;
    cfg.num_stores = 900;
    cfg.num_couriers = 170;
    cfg.num_days = 4;
    cfg.peak_orders_per_region_slot = 5.0;
    cfg.seed = 91;
    return cfg;
  }
};

const Pipeline& P() {
  static const Pipeline* p = new Pipeline();
  return *p;
}

core::O2SiteRecConfig FastModel() {
  core::O2SiteRecConfig cfg;
  cfg.rec.embedding_dim = 24;
  cfg.rec.node_heads = 4;
  cfg.epochs = 20;
  return cfg;
}

// A naive predictor: the type's average training target for every region.
class TypeMeanRecommender : public core::SiteRecommender {
 public:
  std::string Name() const override { return "type-mean"; }
  common::Status Train(const core::TrainContext& ctx) override {
    O2SR_RETURN_IF_ERROR(core::ValidateTrainContext(ctx));
    sums_.assign(ctx.data->num_types(), 0.0);
    counts_.assign(ctx.data->num_types(), 0.0);
    for (const auto& it : *ctx.train) {
      sums_[it.type] += it.target;
      counts_[it.type] += 1.0;
    }
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    if (sums_.empty()) {
      return common::FailedPreconditionError(
          "type-mean: Predict called before Train");
    }
    std::vector<double> out;
    for (const auto& it : pairs) {
      out.push_back(counts_[it.type] > 0 ? sums_[it.type] / counts_[it.type]
                                         : 0.0);
    }
    return out;
  }

 private:
  std::vector<double> sums_;
  std::vector<double> counts_;
};

TEST(IntegrationTest, ModelBeatsTypeMeanOnRanking) {
  core::O2SiteRecRecommender ours(FastModel());
  const eval::EvalResult model_result =
      eval::RunOnce(ours, P().data, P().split, P().opts).value();

  TypeMeanRecommender naive;
  const eval::EvalResult naive_result =
      eval::RunOnce(naive, P().data, P().split, P().opts).value();

  ASSERT_GT(model_result.types_evaluated, 2);
  EXPECT_GT(model_result.ndcg.at(5), naive_result.ndcg.at(5));
  EXPECT_LT(model_result.rmse, naive_result.rmse);
}

TEST(IntegrationTest, ModelBeatsPlainMatrixFactorizationOriginal) {
  core::O2SiteRecRecommender ours(FastModel());
  const eval::EvalResult model_result =
      eval::RunOnce(ours, P().data, P().split, P().opts).value();

  baselines::BaselineConfig mf_cfg;
  mf_cfg.setting = baselines::FeatureSetting::kOriginal;
  auto mf = baselines::MakeBaseline(baselines::BaselineKind::kBlgCoSvd,
                                    mf_cfg);
  const eval::EvalResult mf_result =
      eval::RunOnce(*mf, P().data, P().split, P().opts).value();

  // The paper's central claim at small scale: O2-SiteRec's use of capacity
  // and preferences beats interaction-only factorization on ranking.
  EXPECT_GT(model_result.ndcg.at(10), mf_result.ndcg.at(10) - 0.02);
}

TEST(IntegrationTest, CustomerSignalAblationHurtsOnAverage) {
  // Full vs w/o CoCu averaged over two seeds — the paper's strongest
  // ablation gap (Fig. 10) should survive at small scale on average.
  auto run = [&](core::O2SiteRecVariant variant) {
    double sum = 0.0;
    for (uint64_t seed : {21u, 22u}) {
      core::O2SiteRecConfig cfg = FastModel();
      cfg.variant = variant;
      cfg.seed = seed;
      core::O2SiteRecRecommender model(cfg);
      sum += eval::RunOnce(model, P().data, P().split, P().opts).value().ndcg.at(10);
    }
    return sum / 2.0;
  };
  const double full = run(core::O2SiteRecVariant::kFull);
  const double no_cocu =
      run(core::O2SiteRecVariant::kNoCapacityNoCustomer);
  EXPECT_GT(full, no_cocu - 0.02);
}

TEST(IntegrationTest, PredictionsGeneralizeAcrossSplitSeeds) {
  // The model's test NDCG should be consistently above the naive baseline
  // across different splits (not a lucky split).
  for (uint64_t split_seed : {11u, 12u}) {
    const eval::Split split = eval::SplitInteractions(
        P().data, eval::BuildInteractions(P().data), {0.8, split_seed});
    core::O2SiteRecRecommender ours(FastModel());
    const eval::EvalResult r = eval::RunOnce(ours, P().data, split, P().opts).value();
    TypeMeanRecommender naive;
    const eval::EvalResult n = eval::RunOnce(naive, P().data, split, P().opts).value();
    EXPECT_GT(r.ndcg.at(10), n.ndcg.at(10) - 0.02) << "split " << split_seed;
  }
}

}  // namespace
}  // namespace o2sr
