#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace o2sr::nn {
namespace {

TEST(TensorTest, ConstructionZeroInitializes) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(TensorTest, FromVectorRowMajor) {
  Tensor t = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(t.at(1, 1), 3.5f);
  t.SetZero();
  EXPECT_EQ(t.at(1, 1), 0.0f);
}

TEST(TensorTest, AddAndScaleInPlace) {
  Tensor a = Tensor::FromVector(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromVector(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.at(0, 0), 22.0f);
  EXPECT_EQ(a.at(0, 2), 66.0f);
}

TEST(TensorTest, SumAndMeanAbs) {
  Tensor t = Tensor::FromVector(2, 2, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(t.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.MeanAbs(), 2.5);
  EXPECT_DOUBLE_EQ(Tensor().MeanAbs(), 0.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor(3, 4).ShapeString(), "[3x4]");
}

TEST(TensorTest, XavierWithinLimit) {
  Rng rng(1);
  Tensor t = Tensor::Xavier(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t.data()[i]), limit);
  }
}

TEST(TensorTest, RandomNormalIsDeterministicGivenSeed) {
  Rng a(3), b(3);
  Tensor ta = Tensor::RandomNormal(4, 4, 1.0, a);
  Tensor tb = Tensor::RandomNormal(4, 4, 1.0, b);
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.data()[i], tb.data()[i]);
  }
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransposeVariantsAgreeWithExplicitTranspose) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(4, 3, 1.0, rng);
  Tensor b = Tensor::RandomNormal(4, 5, 1.0, rng);
  // a^T * b via MatMulTransposeA vs. manual transpose.
  Tensor at(3, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Tensor expected = MatMul(at, b);
  Tensor got = MatMulTransposeA(a, b);
  ASSERT_TRUE(expected.SameShape(got));
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-5);
  }

  // a * b2^T via MatMulTransposeB.
  Tensor b2 = Tensor::RandomNormal(6, 3, 1.0, rng);
  Tensor b2t(3, 6);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 3; ++c) b2t.at(c, r) = b2.at(r, c);
  }
  Tensor expected2 = MatMul(a, b2t);
  Tensor got2 = MatMulTransposeB(a, b2);
  ASSERT_TRUE(expected2.SameShape(got2));
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_NEAR(expected2.data()[i], got2.data()[i], 1e-5);
  }
}

TEST(MatMulTest, IdentityIsNeutral) {
  Tensor a = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  Tensor eye = Tensor::FromVector(2, 2, {1, 0, 0, 1});
  Tensor c = MatMul(a, eye);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], c.data()[i]);
}

}  // namespace
}  // namespace o2sr::nn
