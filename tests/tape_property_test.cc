// Parameterized property tests of the autograd tape: shape/identity
// invariants and gradient-flow properties over randomized sizes.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/parameter.h"
#include "nn/tape.h"

namespace o2sr::nn {
namespace {

struct Dims {
  int rows;
  int cols;
};

class TapeShapeTest : public ::testing::TestWithParam<Dims> {};

TEST_P(TapeShapeTest, SoftmaxRowsAlwaysNormalized) {
  Rng rng(GetParam().rows * 100 + GetParam().cols);
  Tape tape;
  Value x = tape.Input(
      Tensor::RandomNormal(GetParam().rows, GetParam().cols, 3.0, rng));
  const Tensor& y = tape.value(tape.SoftmaxRows(x));
  for (int r = 0; r < y.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < y.cols(); ++c) {
      EXPECT_GE(y.at(r, c), 0.0f);
      sum += y.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(TapeShapeTest, GatherThenSegmentSumWithIdentityIndexIsIdentity) {
  Rng rng(7);
  const int n = GetParam().rows;
  Tape tape;
  Value x = tape.Input(Tensor::RandomNormal(n, GetParam().cols, 1.0, rng));
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  Value y = tape.SegmentSum(tape.GatherRows(x, idx), idx, n);
  const Tensor& tx = tape.value(x);
  const Tensor& ty = tape.value(y);
  for (size_t i = 0; i < tx.size(); ++i) {
    EXPECT_FLOAT_EQ(tx.data()[i], ty.data()[i]);
  }
}

TEST_P(TapeShapeTest, ConcatSliceRoundTrip) {
  Rng rng(9);
  Tape tape;
  const int rows = GetParam().rows;
  const int cols = GetParam().cols;
  Value a = tape.Input(Tensor::RandomNormal(rows, cols, 1.0, rng));
  Value b = tape.Input(Tensor::RandomNormal(rows, cols + 1, 1.0, rng));
  Value cat = tape.ConcatCols({a, b});
  Value a_back = tape.SliceCols(cat, 0, cols);
  Value b_back = tape.SliceCols(cat, cols, cols + 1);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_EQ(tape.value(a).at(r, c), tape.value(a_back).at(r, c));
    }
    for (int c = 0; c < cols + 1; ++c) {
      EXPECT_EQ(tape.value(b).at(r, c), tape.value(b_back).at(r, c));
    }
  }
}

TEST_P(TapeShapeTest, MatMulAssociativeWithIdentityChain) {
  Rng rng(11);
  const int n = GetParam().cols;
  Tape tape;
  Value x = tape.Input(Tensor::RandomNormal(GetParam().rows, n, 1.0, rng));
  Tensor eye(n, n);
  for (int i = 0; i < n; ++i) eye.at(i, i) = 1.0f;
  Value y = tape.MatMul(tape.MatMul(x, tape.Input(eye)), tape.Input(eye));
  const Tensor& tx = tape.value(x);
  const Tensor& ty = tape.value(y);
  for (size_t i = 0; i < tx.size(); ++i) {
    EXPECT_NEAR(tx.data()[i], ty.data()[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TapeShapeTest,
                         ::testing::Values(Dims{1, 1}, Dims{3, 5},
                                           Dims{17, 8}, Dims{64, 2}));

TEST(TapeGradientFlowTest, ResidualPathKeepsGradientAlive) {
  // Even if the transformed path saturates (ReLU dead), the residual path
  // must carry gradient — mirrors the capacity model's Eq. 3-4 residuals.
  ParameterStore store;
  Rng rng(1);
  Parameter* x = store.CreateNormal("x", 4, 4, 0.5, rng);
  Tape tape;
  Value v = tape.Param(x);
  Value dead = tape.Relu(tape.Scale(v, -100.0f));  // all zeros
  Value out = tape.Add(dead, v);                   // residual
  tape.Backward(tape.MeanAll(out));
  EXPECT_GT(x->grad.MeanAbs(), 0.0);
}

TEST(TapeGradientFlowTest, SegmentSoftmaxConstantShiftInvariance) {
  // softmax is invariant to per-segment constant shifts.
  Tape tape;
  Value s1 = tape.Input(Tensor::FromVector(4, 1, {1, 2, 5, 6}));
  Value s2 = tape.Input(Tensor::FromVector(4, 1, {101, 102, -5, -4}));
  const std::vector<int> seg = {0, 0, 1, 1};
  const Tensor& a1 = tape.value(tape.SegmentSoftmax(s1, seg, 2));
  const Tensor& a2 = tape.value(tape.SegmentSoftmax(s2, seg, 2));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(a1.at(i, 0), a2.at(i, 0), 1e-6);
  }
}

TEST(TapeGradientFlowTest, DropoutPreservesExpectation) {
  Rng rng(3);
  double sum = 0.0;
  const int rounds = 300;
  for (int i = 0; i < rounds; ++i) {
    Tape tape(/*training=*/true);
    Value x = tape.Input(Tensor::Full(1, 50, 1.0f));
    sum += tape.value(tape.Dropout(x, 0.3, rng)).Sum();
  }
  EXPECT_NEAR(sum / (rounds * 50.0), 1.0, 0.05);
}

TEST(TapeDeathTest, ShapeMismatchAborts) {
  Tape tape;
  Value a = tape.Input(Tensor(2, 3));
  Value b = tape.Input(Tensor(3, 2));
  EXPECT_DEATH(tape.Add(a, b), "O2SR_CHECK");
}

TEST(TapeDeathTest, BadSegmentIdAborts) {
  Tape tape;
  Value x = tape.Input(Tensor(2, 2));
  EXPECT_DEATH(tape.SegmentSum(x, {0, 5}, 2), "O2SR_CHECK");
}

TEST(TapeDeathTest, DoubleBackwardAborts) {
  Tape tape;
  Value x = tape.Input(Tensor::Full(1, 1, 2.0f));
  tape.Backward(x);
  EXPECT_DEATH(tape.Backward(x), "O2SR_CHECK");
}

}  // namespace
}  // namespace o2sr::nn
