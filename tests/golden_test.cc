// Golden regression layer: tiny fixed-seed models whose predictions are
// pinned to checked-in values. A drift > 1e-9 means a semantic change to
// the numerics (kernel rewrite, graph construction change, RNG stream
// shift) — update the goldens ONLY when the change is intended, by
// rebuilding and running with O2SR_REGEN_GOLDENS=1, which prints
// source-pastable arrays instead of asserting.
//
// The snapshot tests assert something stronger than the 1e-9 goldens:
// export -> fresh process-equivalent rebuild (PrepareServing) -> restore
// must reproduce the trained model's predictions *bit-identically*.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "sim/dataset.h"

namespace o2sr {
namespace {

sim::SimConfig GoldenWorld() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3000.0;
  cfg.city_height_m = 3000.0;
  cfg.num_store_types = 6;
  cfg.num_stores = 90;
  cfg.num_couriers = 40;
  cfg.num_days = 2;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 404;
  return cfg;
}

core::O2SiteRecConfig GoldenModelConfig() {
  core::O2SiteRecConfig cfg;
  cfg.capacity.embedding_dim = 8;
  cfg.rec.embedding_dim = 16;
  cfg.rec.node_heads = 2;
  cfg.rec.time_heads = 2;
  cfg.epochs = 5;
  cfg.learning_rate = 5e-3;
  cfg.seed = 7;
  return cfg;
}

baselines::BaselineConfig GoldenBaselineConfig() {
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = 12;
  cfg.epochs = 10;
  cfg.seed = 11;
  return cfg;
}

struct Fixture {
  sim::Dataset data;
  core::InteractionList interactions;
  eval::Split split;
  core::InteractionList probe;  // first 8 held-out pairs

  Fixture() : data(sim::GenerateDataset(GoldenWorld())) {
    interactions = eval::BuildInteractions(data);
    split = eval::SplitInteractions(data, interactions, {0.8, /*seed=*/2});
    for (size_t i = 0; i < split.test.size() && probe.size() < 8; ++i) {
      probe.push_back(split.test[i]);
    }
  }
};

const Fixture& F() {
  static const Fixture* f = new Fixture();
  return *f;
}

core::TrainContext Ctx() {
  core::TrainContext ctx;
  ctx.data = &F().data;
  ctx.visible_orders = &F().split.train_orders;
  ctx.train = &F().split.train;
  return ctx;
}

bool Regenerating() {
  return std::getenv("O2SR_REGEN_GOLDENS") != nullptr;
}

void CheckOrPrint(const char* label, const std::vector<double>& actual,
                  const std::vector<double>& golden) {
  if (Regenerating()) {
    std::printf("const std::vector<double> %s = {", label);
    for (size_t i = 0; i < actual.size(); ++i) {
      std::printf("%s\n    %.17g", i == 0 ? "" : ",", actual[i]);
    }
    std::printf("};\n");
    return;
  }
  ASSERT_EQ(actual.size(), golden.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], golden[i], 1e-9)
        << label << " drifted at index " << i;
  }
}

// Exports `model` to a temp snapshot, rebuilds the model structure in
// `fresh` without training, restores, and requires bit-identical
// predictions on the probe pairs from a ServingEngine over the restored
// copy.
void CheckSnapshotRoundTrip(core::SiteRecommender& model,
                            core::SiteRecommender& fresh,
                            const char* file_tag) {
  const std::vector<double> direct = model.Predict(F().probe).value();

  const std::string path =
      std::string(::testing::TempDir()) + "/golden_" + file_tag + ".snap";
  serve::SnapshotMeta meta;
  meta.model_name = model.Name();
  meta.config_hash = 1;  // the test controls both sides
  meta.num_regions = F().data.num_regions();
  meta.num_types = F().data.num_types();
  meta.type_norm =
      serve::TypeNormalizers(F().data.num_types(), F().interactions);
  ASSERT_TRUE(serve::ExportSnapshot(path, meta, model).ok());

  ASSERT_TRUE(fresh.PrepareServing(Ctx()).ok());
  const auto snapshot = serve::LoadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(serve::RestoreModel(*snapshot, fresh, 1).ok());

  const auto engine = serve::ServingEngine::Create(&fresh).value();
  const std::vector<double> served = engine->Score(F().probe).value();
  ASSERT_EQ(served.size(), direct.size());
  for (size_t i = 0; i < served.size(); ++i) {
    // Bitwise equality, not NEAR: the restored model runs the same op
    // graph on the same values.
    EXPECT_EQ(served[i], direct[i])
        << model.Name() << ": snapshot serving diverged at pair " << i;
  }
}

// --- Goldens (regenerate with O2SR_REGEN_GOLDENS=1) -------------------

const std::vector<double> kO2SiteRecPredict = {
    0.43220686912536621,
    0.49183851480484009,
    0.44819587469100952,
    0.46031674742698669,
    0.43642014265060425,
    0.48578593134880066,
    0.46967148780822754,
    0.42240467667579651};
const std::vector<double> kO2SiteRecTopRegions = {21, 16, 25, 26, 18};
const std::vector<double> kO2SiteRecTopScores = {
    0.52793270349502563,
    0.50171089172363281,
    0.48818352818489075,
    0.48669099807739258,
    0.47798517346382141};
const std::vector<double> kCityTransferPredict = {
    0.4147246778011322,
    0.35891285538673401,
    0.40247780084609985,
    0.40588197112083435,
    0.38875466585159302,
    0.45661133527755737,
    0.38428980112075806,
    0.42126849293708801};
const std::vector<double> kBlgCoSvdPredict = {
    0.35201624035835266,
    0.4598604142665863,
    0.57248687744140625,
    0.56886202096939087,
    0.40498623251914978,
    0.5291786789894104,
    0.55558156967163086,
    0.35441747307777405};

TEST(GoldenTest, O2SiteRecPredictMatchesGolden) {
  core::O2SiteRecRecommender model(GoldenModelConfig());
  ASSERT_TRUE(model.Train(Ctx()).ok());
  CheckOrPrint("kO2SiteRecPredict", model.Predict(F().probe).value(),
               kO2SiteRecPredict);

  // Ranked top-5 for type 0 over every region, through the engine.
  const auto engine = serve::ServingEngine::Create(&model).value();
  std::vector<int> all_regions(F().data.num_regions());
  for (int r = 0; r < F().data.num_regions(); ++r) all_regions[r] = r;
  const auto ranked = engine->RankSites(0, all_regions, 5).value();
  std::vector<double> regions, scores;
  for (const serve::RankedSite& site : ranked) {
    regions.push_back(site.region);
    scores.push_back(site.score);
  }
  CheckOrPrint("kO2SiteRecTopRegions", regions, kO2SiteRecTopRegions);
  CheckOrPrint("kO2SiteRecTopScores", scores, kO2SiteRecTopScores);
}

TEST(GoldenTest, O2SiteRecSnapshotServesBitIdentically) {
  core::O2SiteRecRecommender model(GoldenModelConfig());
  ASSERT_TRUE(model.Train(Ctx()).ok());
  core::O2SiteRecRecommender fresh(GoldenModelConfig());
  CheckSnapshotRoundTrip(model, fresh, "o2siterec");
}

TEST(GoldenTest, CityTransferPredictMatchesGolden) {
  const auto model = baselines::MakeBaseline(
      baselines::BaselineKind::kCityTransfer, GoldenBaselineConfig());
  ASSERT_TRUE(model->Train(Ctx()).ok());
  CheckOrPrint("kCityTransferPredict", model->Predict(F().probe).value(),
               kCityTransferPredict);
}

TEST(GoldenTest, CityTransferSnapshotServesBitIdentically) {
  const auto model = baselines::MakeBaseline(
      baselines::BaselineKind::kCityTransfer, GoldenBaselineConfig());
  ASSERT_TRUE(model->Train(Ctx()).ok());
  const auto fresh = baselines::MakeBaseline(
      baselines::BaselineKind::kCityTransfer, GoldenBaselineConfig());
  CheckSnapshotRoundTrip(*model, *fresh, "citytransfer");
}

TEST(GoldenTest, BlgCoSvdPredictMatchesGolden) {
  const auto model = baselines::MakeBaseline(
      baselines::BaselineKind::kBlgCoSvd, GoldenBaselineConfig());
  ASSERT_TRUE(model->Train(Ctx()).ok());
  CheckOrPrint("kBlgCoSvdPredict", model->Predict(F().probe).value(),
               kBlgCoSvdPredict);
}

TEST(GoldenTest, BlgCoSvdSnapshotServesBitIdentically) {
  const auto model = baselines::MakeBaseline(
      baselines::BaselineKind::kBlgCoSvd, GoldenBaselineConfig());
  ASSERT_TRUE(model->Train(Ctx()).ok());
  const auto fresh = baselines::MakeBaseline(
      baselines::BaselineKind::kBlgCoSvd, GoldenBaselineConfig());
  CheckSnapshotRoundTrip(*model, *fresh, "blgcosvd");
}

}  // namespace
}  // namespace o2sr
