#include "sim/drift.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "sim/dataset.h"

namespace o2sr::sim {
namespace {

SimConfig SmallWorld() {
  SimConfig cfg;
  cfg.city_width_m = 2000.0;
  cfg.city_height_m = 2000.0;
  cfg.num_store_types = 5;
  cfg.num_stores = 80;
  cfg.num_couriers = 40;
  cfg.num_days = 1;
  cfg.seed = 123;
  return cfg;
}

DriftConfig SomeDrift() {
  DriftConfig drift;
  drift.store_close_rate = 0.15;
  drift.store_open_rate = 0.20;
  drift.popularity_walk_sigma = 0.4;
  drift.rush_shift_slots = 0.8;
  drift.seed = 5;
  return drift;
}

// Field-by-field equality of the observable world (the pieces a model
// trains on).
void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.stores.size(), b.stores.size());
  for (size_t i = 0; i < a.stores.size(); ++i) {
    EXPECT_EQ(a.stores[i].id, b.stores[i].id) << i;
    EXPECT_EQ(a.stores[i].type, b.stores[i].type) << i;
    EXPECT_EQ(a.stores[i].region, b.stores[i].region) << i;
    EXPECT_DOUBLE_EQ(a.stores[i].quality, b.stores[i].quality) << i;
  }
  ASSERT_EQ(a.orders.size(), b.orders.size());
  for (size_t i = 0; i < a.orders.size(); ++i) {
    EXPECT_EQ(a.orders[i].store_id, b.orders[i].store_id) << i;
    EXPECT_EQ(a.orders[i].type, b.orders[i].type) << i;
    EXPECT_EQ(a.orders[i].slot, b.orders[i].slot) << i;
    EXPECT_DOUBLE_EQ(a.orders[i].delivery_min, b.orders[i].delivery_min)
        << i;
  }
}

// --- ShiftSlotProfile ---------------------------------------------------

TEST(ShiftSlotProfileTest, ZeroShiftIsIdentity) {
  const std::vector<double> profile = {1.0, 2.0, 3.0, 4.0};
  const auto shifted = ShiftSlotProfile(profile, 0.0);
  ASSERT_EQ(shifted.size(), profile.size());
  for (size_t i = 0; i < profile.size(); ++i) {
    EXPECT_DOUBLE_EQ(shifted[i], profile[i]) << i;
  }
}

TEST(ShiftSlotProfileTest, IntegerShiftRotatesCircularly) {
  const std::vector<double> profile = {1.0, 2.0, 3.0, 4.0};
  // Positive shift moves the rush later in the day: slot i reads what used
  // to be at i - shift (mod n).
  const auto shifted = ShiftSlotProfile(profile, 1.0);
  const std::vector<double> expected = {4.0, 1.0, 2.0, 3.0};
  ASSERT_EQ(shifted.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(shifted[i], expected[i], 1e-12);
}

TEST(ShiftSlotProfileTest, FractionalShiftInterpolatesAndPreservesMass) {
  const std::vector<double> profile = {0.2, 1.5, 3.0, 0.7, 2.1, 0.5};
  const auto shifted = ShiftSlotProfile(profile, 1.37);
  const double mass =
      std::accumulate(profile.begin(), profile.end(), 0.0);
  const double shifted_mass =
      std::accumulate(shifted.begin(), shifted.end(), 0.0);
  // Linear interpolation on a circle is mass-preserving: the day's total
  // demand doesn't change, only when it happens.
  EXPECT_NEAR(shifted_mass, mass, 1e-9);
  // Every value stays within the original envelope.
  for (double v : shifted) {
    EXPECT_GE(v, 0.2 - 1e-12);
    EXPECT_LE(v, 3.0 + 1e-12);
  }
}

TEST(ShiftSlotProfileTest, NegativeAndWrappedShiftsAreCircular) {
  const std::vector<double> profile = {1.0, 2.0, 3.0, 4.0};
  const auto minus_one = ShiftSlotProfile(profile, -1.0);
  const auto plus_three = ShiftSlotProfile(profile, 3.0);
  const auto plus_seven = ShiftSlotProfile(profile, 7.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(minus_one[i], plus_three[i], 1e-12) << i;
    EXPECT_NEAR(plus_three[i], plus_seven[i], 1e-12) << i;
  }
}

// --- GenerateDriftedDataset --------------------------------------------

TEST(DriftTest, EpochZeroIsTheBaseWorldExactly) {
  const SimConfig base = SmallWorld();
  const Dataset original = GenerateDataset(base);
  DriftStats stats;
  const Dataset epoch0 =
      GenerateDriftedDataset(base, SomeDrift(), 0, &stats);
  ExpectSameDataset(original, epoch0);
  EXPECT_EQ(stats.epoch, 0);
  EXPECT_EQ(stats.stores_closed, 0);
  EXPECT_EQ(stats.stores_opened, 0);
  EXPECT_DOUBLE_EQ(stats.demand_shift_slots, 0.0);
}

TEST(DriftTest, SameEpochRegeneratesTheIdenticalWorld) {
  const SimConfig base = SmallWorld();
  const DriftConfig drift = SomeDrift();
  DriftStats stats_a, stats_b;
  const Dataset a = GenerateDriftedDataset(base, drift, 3, &stats_a);
  const Dataset b = GenerateDriftedDataset(base, drift, 3, &stats_b);
  ExpectSameDataset(a, b);
  EXPECT_EQ(stats_a.stores_closed, stats_b.stores_closed);
  EXPECT_EQ(stats_a.stores_opened, stats_b.stores_opened);
  EXPECT_DOUBLE_EQ(stats_a.demand_shift_slots, stats_b.demand_shift_slots);
}

TEST(DriftTest, DriftActuallyChangesTheWorld) {
  const SimConfig base = SmallWorld();
  DriftStats stats;
  const Dataset drifted =
      GenerateDriftedDataset(base, SomeDrift(), 2, &stats);
  EXPECT_EQ(stats.epoch, 2);
  // Over 2 epochs at 15%/20% rates some churn is all but certain, and the
  // draw is deterministic anyway.
  EXPECT_GT(stats.stores_closed, 0);
  EXPECT_GT(stats.stores_opened, 0);
  EXPECT_NE(stats.demand_shift_slots, 0.0);
  EXPECT_EQ(stats.num_stores, static_cast<int>(drifted.stores.size()));
  // The popularity walk moved off 1.0 for at least one type.
  ASSERT_EQ(stats.type_popularity_scale.size(),
            static_cast<size_t>(base.num_store_types));
  bool moved = false;
  for (double s : stats.type_popularity_scale) {
    EXPECT_GT(s, 0.0);
    moved = moved || std::abs(s - 1.0) > 1e-9;
  }
  EXPECT_TRUE(moved);
}

TEST(DriftTest, DriftSeedSelectsTheFuture) {
  const SimConfig base = SmallWorld();
  DriftConfig drift_a = SomeDrift();
  DriftConfig drift_b = SomeDrift();
  drift_b.seed = drift_a.seed + 1;
  DriftStats stats_a, stats_b;
  (void)GenerateDriftedDataset(base, drift_a, 2, &stats_a);
  (void)GenerateDriftedDataset(base, drift_b, 2, &stats_b);
  // Different drift futures from the same base world.
  EXPECT_TRUE(stats_a.stores_closed != stats_b.stores_closed ||
              stats_a.demand_shift_slots != stats_b.demand_shift_slots ||
              stats_a.type_popularity_scale != stats_b.type_popularity_scale);
}

TEST(DriftTest, StoreIdsStayContiguousAcrossEpochs) {
  // features/analysis.cc indexes per-store vectors by store id; drift must
  // reindex after churn or every downstream consumer breaks.
  const SimConfig base = SmallWorld();
  for (int epoch : {1, 2, 4}) {
    const Dataset drifted = GenerateDriftedDataset(base, SomeDrift(), epoch);
    for (size_t i = 0; i < drifted.stores.size(); ++i) {
      ASSERT_EQ(drifted.stores[i].id, static_cast<int>(i))
          << "epoch " << epoch;
    }
    for (const Order& order : drifted.orders) {
      ASSERT_GE(order.store_id, 0);
      ASSERT_LT(order.store_id, static_cast<int>(drifted.stores.size()))
          << "epoch " << epoch;
    }
  }
}

TEST(DriftTest, EpochsComposeCumulatively) {
  const SimConfig base = SmallWorld();
  const DriftConfig drift = SomeDrift();
  DriftStats stats1, stats3;
  (void)GenerateDriftedDataset(base, drift, 1, &stats1);
  (void)GenerateDriftedDataset(base, drift, 3, &stats3);
  // Cumulative churn counters never shrink with more epochs.
  EXPECT_GE(stats3.stores_closed, stats1.stores_closed);
  EXPECT_GE(stats3.stores_opened, stats1.stores_opened);
}

}  // namespace
}  // namespace o2sr::sim
