#include "core/hetero_rec_model.h"

#include <gtest/gtest.h>

#include "features/order_stats.h"
#include "sim/dataset.h"

namespace o2sr::core {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3000.0;
  cfg.city_height_m = 3000.0;
  cfg.num_store_types = 6;
  cfg.num_stores = 80;
  cfg.num_couriers = 50;
  cfg.num_days = 2;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 61;
  return cfg;
}

class HeteroRecModelTest : public ::testing::Test {
 protected:
  HeteroRecModelTest()
      : data_(sim::GenerateDataset(TestConfig())),
        stats_(data_),
        graph_(data_, stats_) {}

  HeteroRecConfig SmallConfig() const {
    HeteroRecConfig cfg;
    cfg.embedding_dim = 12;
    cfg.node_heads = 2;
    cfg.time_heads = 2;
    cfg.dropout = 0.0;
    return cfg;
  }

  std::vector<HeteroRecModel::PeriodEmbeddings> Forward(
      const HeteroRecModel& model, nn::Tape& tape) const {
    Rng rng(1);
    std::vector<HeteroRecModel::PeriodEmbeddings> periods;
    for (int p = 0; p < sim::kNumPeriods; ++p) {
      periods.push_back(model.ForwardPeriod(tape, p, nn::Value{}, rng));
    }
    return periods;
  }

  sim::Dataset data_;
  features::OrderStats stats_;
  graphs::HeteroMultiGraph graph_;
};

TEST_F(HeteroRecModelTest, PeriodEmbeddingShapes) {
  nn::ParameterStore store;
  Rng rng(1);
  HeteroRecModel model(&graph_, SmallConfig(), 0, &store, rng);
  nn::Tape tape;
  const auto periods = Forward(model, tape);
  for (const auto& pe : periods) {
    EXPECT_EQ(tape.rows(pe.h), graph_.num_store_nodes());
    EXPECT_EQ(tape.cols(pe.h), 12);
    EXPECT_EQ(tape.rows(pe.q), graph_.num_types());
    EXPECT_EQ(tape.cols(pe.q), 12);
  }
}

TEST_F(HeteroRecModelTest, PredictionShapeAndRange) {
  nn::ParameterStore store;
  Rng rng(1);
  HeteroRecModel model(&graph_, SmallConfig(), 0, &store, rng);
  nn::Tape tape;
  const auto periods = Forward(model, tape);
  const std::vector<int> s_nodes = {0, 1, 2, 0};
  const std::vector<int> types = {0, 1, 2, 3};
  nn::Value pred = model.PredictPairs(tape, periods, s_nodes, types);
  ASSERT_EQ(tape.rows(pred), 4);
  ASSERT_EQ(tape.cols(pred), 1);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(tape.value(pred).at(r, 0), 0.0f);
    EXPECT_LT(tape.value(pred).at(r, 0), 1.0f);
  }
}

TEST_F(HeteroRecModelTest, EmbeddingsDifferAcrossPeriods) {
  nn::ParameterStore store;
  Rng rng(1);
  HeteroRecModel model(&graph_, SmallConfig(), 0, &store, rng);
  nn::Tape tape;
  const auto periods = Forward(model, tape);
  // S-U/U-A edges differ per period, so store-region embeddings must too.
  const nn::Tensor& h0 = tape.value(periods[0].h);
  const nn::Tensor& h2 = tape.value(periods[2].h);
  double diff = 0.0;
  for (size_t i = 0; i < h0.size(); ++i) {
    diff += std::fabs(h0.data()[i] - h2.data()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST_F(HeteroRecModelTest, CapacityEmbeddingChangesSuAttrWidth) {
  nn::ParameterStore store_with, store_without;
  Rng rng_a(1), rng_b(1);
  HeteroRecModel with_cap(&graph_, SmallConfig(), 10, &store_with, rng_a);
  HeteroRecModel without_cap(&graph_, SmallConfig(), 0, &store_without,
                             rng_b);
  // The SU fuse layer consumes d2 + 2 + capacity_dim inputs, so the model
  // with capacity has strictly more parameters.
  EXPECT_GT(store_with.NumScalars(), store_without.NumScalars());
}

TEST_F(HeteroRecModelTest, CapacityEmbeddingFlowsIntoPredictions) {
  nn::ParameterStore store;
  Rng rng(1);
  const int cap_dim = 6;
  HeteroRecModel model(&graph_, SmallConfig(), cap_dim, &store, rng);
  auto run = [&](float fill) {
    nn::Tape tape;
    Rng drng(1);
    std::vector<HeteroRecModel::PeriodEmbeddings> periods;
    for (int p = 0; p < sim::kNumPeriods; ++p) {
      const int edges =
          static_cast<int>(graph_.Subgraph(p).su_edges.size());
      nn::Value cap = tape.Input(nn::Tensor::Full(edges, cap_dim, fill));
      periods.push_back(model.ForwardPeriod(tape, p, cap, drng));
    }
    nn::Value pred = model.PredictPairs(tape, periods, {0, 1}, {0, 1});
    return std::pair<float, float>(tape.value(pred).at(0, 0),
                                   tape.value(pred).at(1, 0));
  };
  const auto a = run(0.0f);
  const auto b = run(1.0f);
  // Different capacity signals must change the prediction.
  EXPECT_TRUE(a.first != b.first || a.second != b.second);
}

TEST_F(HeteroRecModelTest, MeanAggregationVariantUsesFewerParameters) {
  HeteroRecConfig with_attention = SmallConfig();
  HeteroRecConfig mean_agg = SmallConfig();
  mean_agg.node_attention = false;
  nn::ParameterStore store_a, store_b;
  Rng rng_a(1), rng_b(1);
  HeteroRecModel a(&graph_, with_attention, 0, &store_a, rng_a);
  HeteroRecModel b(&graph_, mean_agg, 0, &store_b, rng_b);
  // Mean aggregation skips the key/query projections at run time but the
  // parameter sets are created identically; verify both still run and the
  // attention one produces different embeddings from the mean one.
  nn::Tape tape_a, tape_b;
  Rng da(1), db(1);
  nn::Value ha = a.ForwardPeriod(tape_a, 0, nn::Value{}, da).h;
  nn::Value hb = b.ForwardPeriod(tape_b, 0, nn::Value{}, db).h;
  ASSERT_EQ(tape_a.rows(ha), tape_b.rows(hb));
  double diff = 0.0;
  for (size_t i = 0; i < tape_a.value(ha).size(); ++i) {
    diff += std::fabs(tape_a.value(ha).data()[i] -
                      tape_b.value(hb).data()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST_F(HeteroRecModelTest, TimeAttentionDiffersFromMeanOverPeriods) {
  HeteroRecConfig att = SmallConfig();
  HeteroRecConfig mean = SmallConfig();
  mean.time_attention = false;
  nn::ParameterStore store_a, store_b;
  Rng rng_a(1), rng_b(1);
  HeteroRecModel a(&graph_, att, 0, &store_a, rng_a);
  HeteroRecModel b(&graph_, mean, 0, &store_b, rng_b);
  nn::Tape tape_a, tape_b;
  nn::Value pa = a.PredictPairs(tape_a, Forward(a, tape_a), {0, 1}, {0, 1});
  nn::Value pb = b.PredictPairs(tape_b, Forward(b, tape_b), {0, 1}, {0, 1});
  // Same seeds -> same parameters where shared, but the aggregation path
  // differs, so outputs should differ.
  EXPECT_NE(tape_a.value(pa).at(0, 0), tape_b.value(pb).at(0, 0));
}

TEST_F(HeteroRecModelTest, GradientsReachAllParameterGroups) {
  nn::ParameterStore store;
  Rng rng(1);
  HeteroRecModel model(&graph_, SmallConfig(), 0, &store, rng);
  nn::Tape tape;
  const auto periods = Forward(model, tape);
  nn::Value pred = model.PredictPairs(tape, periods, {0, 1, 2}, {0, 1, 2});
  nn::Value loss = tape.MeanAll(pred);
  tape.Backward(loss);
  size_t with_grad = 0, total = 0;
  for (const auto& p : store.params()) {
    ++total;
    if (p->grad.MeanAbs() > 0.0) ++with_grad;
  }
  // Nearly all parameters should receive gradient (some relation params may
  // be dead if a period has no edges of that relation).
  EXPECT_GT(with_grad, total * 3 / 4);
}

}  // namespace
}  // namespace o2sr::core
