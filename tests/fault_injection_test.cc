#include "common/fault.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/checkpoint.h"
#include "nn/parameter.h"
#include "nn/serialize.h"

namespace o2sr::common {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Every test that touches the global injector must leave it healthy: the
// rest of the binary (and other suites in a shared process) assume a
// fault-free world unless they opt in.
class GlobalFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::ResetGlobalForTest(""); }
};

// --- Recipe parsing ---------------------------------------------------

TEST(FaultParseTest, EmptySpecIsHealthy) {
  const auto injector = FaultInjector::Parse("");
  ASSERT_TRUE(injector.ok());
  EXPECT_FALSE((*injector)->enabled());
  EXPECT_TRUE((*injector)->InjectError("anything").ok());
  EXPECT_EQ((*injector)->TotalFired(), 0u);
}

TEST(FaultParseTest, FullRecipeParses) {
  const auto injector = FaultInjector::Parse(
      "seed=7,snapshot.read=bitflip:0.01,score=delay:5ms,score=error:0.02");
  ASSERT_TRUE(injector.ok()) << injector.status();
  EXPECT_TRUE((*injector)->enabled());
}

TEST(FaultParseTest, TrailingAndDoubledCommasAreTolerated) {
  const auto injector = FaultInjector::Parse(",score=error:1.0,,");
  ASSERT_TRUE(injector.ok()) << injector.status();
  EXPECT_TRUE((*injector)->enabled());
}

TEST(FaultParseTest, MalformedRecipesAreInvalidArgument) {
  const char* bad[] = {
      "score",                 // no '='
      "=error:1.0",            // empty site
      "score=error",           // no ':arg'
      "score=explode:0.5",     // unknown kind
      "score=error:1.5",       // probability out of range
      "score=error:-0.1",      // negative probability
      "score=error:abc",       // non-numeric probability
      "score=delay:5",         // missing duration unit
      "score=delay:5h",        // unsupported unit
      "score=delay:-5ms",      // negative duration
      "seed=abc",              // non-integer seed
  };
  for (const char* spec : bad) {
    const auto injector = FaultInjector::Parse(spec);
    EXPECT_EQ(injector.status().code(), StatusCode::kInvalidArgument)
        << "spec '" << spec << "': " << injector.status();
  }
}

TEST(FaultParseTest, DurationUnits) {
  // All three units parse; a zero-length delay still *fires* (observable
  // via FiredCount) without sleeping.
  for (const char* spec :
       {"a=delay:250us", "a=delay:5ms", "a=delay:0.001s", "a=delay:0ms"}) {
    const auto injector = FaultInjector::Parse(spec);
    ASSERT_TRUE(injector.ok()) << spec << ": " << injector.status();
    (*injector)->InjectDelay("a");
    EXPECT_EQ((*injector)->FiredCount("a"), 1u) << spec;
  }
}

// --- Determinism ------------------------------------------------------

std::vector<bool> ErrorPattern(FaultInjector& injector, const std::string& site,
                               int n) {
  std::vector<bool> fired(n);
  for (int i = 0; i < n; ++i) fired[i] = !injector.InjectError(site).ok();
  return fired;
}

TEST(FaultDeterminismTest, SameRecipeReplaysTheSameFaultSequence) {
  const std::string spec = "seed=11,score=error:0.3";
  auto a = FaultInjector::Parse(spec).value();
  auto b = FaultInjector::Parse(spec).value();
  const auto pattern_a = ErrorPattern(*a, "score", 500);
  const auto pattern_b = ErrorPattern(*b, "score", 500);
  EXPECT_EQ(pattern_a, pattern_b);
  EXPECT_EQ(a->FiredCount("score"), b->FiredCount("score"));
  EXPECT_GT(a->FiredCount("score"), 0u);
}

TEST(FaultDeterminismTest, SeedChangesTheFaultSequence) {
  auto a = FaultInjector::Parse("seed=1,score=error:0.5").value();
  auto b = FaultInjector::Parse("seed=2,score=error:0.5").value();
  EXPECT_NE(ErrorPattern(*a, "score", 500), ErrorPattern(*b, "score", 500));
}

TEST(FaultDeterminismTest, ProbabilityBoundsAndRates) {
  auto always = FaultInjector::Parse("a=error:1.0").value();
  auto never = FaultInjector::Parse("a=error:0.0").value();
  auto half = FaultInjector::Parse("a=error:0.5").value();
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(always->InjectError("a").ok());
    EXPECT_TRUE(never->InjectError("a").ok());
    (void)half->InjectError("a");
  }
  EXPECT_EQ(always->FiredCount("a"), 200u);
  EXPECT_EQ(never->FiredCount("a"), 0u);
  // 200 Bernoulli(0.5) draws: [60, 140] is > 8 sigma, deterministic anyway.
  EXPECT_GT(half->FiredCount("a"), 60u);
  EXPECT_LT(half->FiredCount("a"), 140u);
}

TEST(FaultDeterminismTest, InjectedErrorIsUnavailableAndNamesTheSite) {
  auto injector = FaultInjector::Parse("score=error:1.0").value();
  const Status status = injector->InjectError("score");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("score"), std::string::npos);
}

TEST(FaultDeterminismTest, SitesAreIsolated) {
  auto injector = FaultInjector::Parse("score=error:1.0").value();
  EXPECT_TRUE(injector->InjectError("snapshot.read").ok());
  EXPECT_FALSE(injector->InjectError("score").ok());
  EXPECT_EQ(injector->FiredCount("snapshot.read"), 0u);
  EXPECT_EQ(injector->FiredCount("score"), 1u);
  EXPECT_EQ(injector->TotalFired(), 1u);
}

// --- Corruption -------------------------------------------------------

TEST(FaultCorruptionTest, BitflipFlipsExactlyOneBit) {
  auto injector = FaultInjector::Parse("buf=bitflip:1.0").value();
  const std::string original(64, '\x00');
  std::string bytes = original;
  injector->InjectCorruption("buf", &bytes);
  ASSERT_EQ(bytes.size(), original.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(bytes[i] ^ original[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultCorruptionTest, TruncateShortensTheBuffer) {
  auto injector = FaultInjector::Parse("buf=trunc:1.0").value();
  std::string bytes(64, 'x');
  injector->InjectCorruption("buf", &bytes);
  EXPECT_LT(bytes.size(), 64u);
}

TEST(FaultCorruptionTest, CorruptionIsDeterministic) {
  auto a = FaultInjector::Parse("seed=3,buf=bitflip:1.0,buf=trunc:1.0").value();
  auto b = FaultInjector::Parse("seed=3,buf=bitflip:1.0,buf=trunc:1.0").value();
  std::string bytes_a(128, 'q'), bytes_b(128, 'q');
  a->InjectCorruption("buf", &bytes_a);
  b->InjectCorruption("buf", &bytes_b);
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(FaultCorruptionTest, EmptyBufferIsLeftAlone) {
  auto injector = FaultInjector::Parse("buf=bitflip:1.0").value();
  std::string bytes;
  injector->InjectCorruption("buf", &bytes);
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(injector->FiredCount("buf"), 0u);
}

// --- Injection sites in nn/serialize ----------------------------------

TEST_F(GlobalFaultTest, SerializeWriteErrorFailsThePublish) {
  FaultInjector::ResetGlobalForTest("serialize.write=error:1.0");
  const std::string path = TempPath("fault_write.bin");
  const Status status = nn::WriteFileAtomic(path, "payload");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "a failed publish must not leave a file behind";
  if (f != nullptr) std::fclose(f);
}

TEST_F(GlobalFaultTest, SerializeReadCorruptionNeverEscapesValidation) {
  // Write a valid container healthy, then read it under guaranteed
  // corruption: the envelope checks must catch every flip/cut as a clean
  // Status (checksum, size or version check — never a crash or silent
  // success).
  const std::string path = TempPath("fault_read.bin");
  ASSERT_TRUE(
      nn::WriteContainerFile(path, "O2SRTEST", 1, std::string(256, 'd')).ok());
  for (const char* spec :
       {"seed=1,serialize.read=bitflip:1.0", "seed=2,serialize.read=bitflip:1.0",
        "seed=1,serialize.read=trunc:1.0", "seed=2,serialize.read=trunc:1.0"}) {
    FaultInjector::ResetGlobalForTest(spec);
    const auto payload = nn::ReadContainerFile(path, "O2SRTEST", 1);
    EXPECT_FALSE(payload.ok()) << spec;
  }
  // And healthy again: the file itself was never touched.
  FaultInjector::ResetGlobalForTest("");
  const auto payload = nn::ReadContainerFile(path, "O2SRTEST", 1);
  ASSERT_TRUE(payload.ok()) << payload.status();
  EXPECT_EQ(payload->size(), 256u);
}

// --- Injection sites in nn/checkpoint ----------------------------------

void FillTinyStore(nn::ParameterStore* store) {
  store->CreateZeros("fault.w", 2, 3);
  store->params()[0]->value.Fill(0.5f);
}

// Checkpoints carry Adam moments shaped like the store.
nn::AdamState TinyAdam() {
  nn::AdamState adam;
  adam.m.push_back(nn::Tensor::Zeros(2, 3));
  adam.v.push_back(nn::Tensor::Zeros(2, 3));
  return adam;
}

TEST_F(GlobalFaultTest, CheckpointWriteErrorFailsWithoutPublishing) {
  FaultInjector::ResetGlobalForTest("checkpoint.write=error:1.0");
  nn::ParameterStore store;
  FillTinyStore(&store);
  const std::string path = TempPath("fault_ckpt_write.ckpt");
  std::remove(path.c_str());  // the healthy save below persists across runs
  const Status status =
      nn::SaveCheckpoint(path, nn::CheckpointMeta(), store, TinyAdam());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(nn::CheckpointExists(path))
      << "a failed save must not leave a checkpoint behind";

  // Healthy again: the same save goes through.
  FaultInjector::ResetGlobalForTest("");
  EXPECT_TRUE(
      nn::SaveCheckpoint(path, nn::CheckpointMeta(), store, TinyAdam())
          .ok());
  EXPECT_TRUE(nn::CheckpointExists(path));
}

TEST_F(GlobalFaultTest, CheckpointReadFaultsNeverEscapeValidation) {
  const std::string path = TempPath("fault_ckpt_read.ckpt");
  {
    nn::ParameterStore store;
    FillTinyStore(&store);
    ASSERT_TRUE(nn::SaveCheckpoint(path, nn::CheckpointMeta(), store,
                                   TinyAdam())
                    .ok());
  }
  // Corruption at the read site is caught by the envelope checks; an
  // injected read error surfaces as UNAVAILABLE. Either way: a clean
  // Status, never a crash or a silently wrong restore.
  for (const char* spec :
       {"seed=1,checkpoint.read=bitflip:1.0", "seed=2,checkpoint.read=trunc:1.0",
        "checkpoint.read=error:1.0"}) {
    FaultInjector::ResetGlobalForTest(spec);
    nn::ParameterStore store;
    FillTinyStore(&store);
    nn::CheckpointMeta meta;
    nn::AdamState adam = TinyAdam();
    const Status status = nn::LoadCheckpoint(path, &meta, &store, &adam);
    EXPECT_FALSE(status.ok()) << spec;
    EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
                status.code() == StatusCode::kUnavailable)
        << spec << ": " << status;
  }
  // The file itself was never touched: a healthy load succeeds.
  FaultInjector::ResetGlobalForTest("");
  nn::ParameterStore store;
  FillTinyStore(&store);
  nn::CheckpointMeta meta;
  nn::AdamState adam = TinyAdam();
  EXPECT_TRUE(nn::LoadCheckpoint(path, &meta, &store, &adam).ok());
}

// --- Global injector hygiene ------------------------------------------

TEST_F(GlobalFaultTest, ResetGlobalSwapsTheRecipe) {
  FaultInjector::ResetGlobalForTest("score=error:1.0");
  EXPECT_TRUE(FaultInjector::Global().enabled());
  EXPECT_FALSE(FaultInjector::Global().InjectError("score").ok());
  FaultInjector::ResetGlobalForTest("");
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_TRUE(FaultInjector::Global().InjectError("score").ok());
}

}  // namespace
}  // namespace o2sr::common
