#include "serve/engine.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "core/o2siterec_recommender.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/score_cache.h"
#include "serve/snapshot.h"

namespace o2sr::serve {
namespace {

using common::StatusCode;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFileRaw(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// A deterministic in-memory recommender: score(region, type) =
// region + 100 * type, over regions [0, num_regions) with odd regions
// outside the domain and store types limited to [0, 10). Counts
// ServingPredict calls so cache behavior is observable.
class StubRecommender : public core::SiteRecommender {
 public:
  explicit StubRecommender(int num_regions) : num_regions_(num_regions) {
    Rng rng(5);
    store_.CreateNormal("stub.table", 4, 3, 1.0, rng);
    store_.CreateZeros("stub.bias", 1, 3);
  }

  std::string Name() const override { return "Stub"; }
  common::Status Train(const core::TrainContext&) override {
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    ++predict_calls_;
    std::vector<double> out;
    out.reserve(pairs.size());
    for (const core::Interaction& it : pairs) {
      if (it.type < 0 || it.type >= 10) {
        return common::InvalidArgumentError("stub: unknown store type " +
                                            std::to_string(it.type));
      }
      if (!CanScoreRegion(it.region)) {
        return common::InvalidArgumentError("stub: unscorable region " +
                                            std::to_string(it.region));
      }
      out.push_back(Score(it.region, it.type));
    }
    return out;
  }
  const nn::ParameterStore* parameter_store() const override {
    return &store_;
  }
  nn::ParameterStore* mutable_parameter_store() override { return &store_; }
  bool CanScoreRegion(int region) const override {
    return region >= 0 && region < num_regions_ && region % 2 == 0;
  }

  static double Score(int region, int type) {
    return static_cast<double>(region + 100 * type);
  }
  int predict_calls() const { return predict_calls_; }

 private:
  int num_regions_;
  nn::ParameterStore store_;
  mutable int predict_calls_ = 0;
};

// --- Fingerprints -----------------------------------------------------

TEST(FingerprintTest, IdenticalConfigsAgree) {
  sim::SimConfig a, b;
  EXPECT_EQ(FingerprintOf(a), FingerprintOf(b));
  core::O2SiteRecConfig ma, mb;
  EXPECT_EQ(FingerprintOf(ma), FingerprintOf(mb));
}

TEST(FingerprintTest, AnyFieldChangeChangesTheHash) {
  sim::SimConfig base;
  sim::SimConfig seed = base;
  seed.seed += 1;
  EXPECT_NE(FingerprintOf(base), FingerprintOf(seed));
  sim::SimConfig stores = base;
  stores.num_stores += 1;
  EXPECT_NE(FingerprintOf(base), FingerprintOf(stores));

  core::O2SiteRecConfig model;
  core::O2SiteRecConfig variant = model;
  variant.variant = core::O2SiteRecVariant::kNoCapacity;
  EXPECT_NE(FingerprintOf(model), FingerprintOf(variant));
  core::O2SiteRecConfig dim = model;
  dim.rec.embedding_dim += 2;
  EXPECT_NE(FingerprintOf(model), FingerprintOf(dim));
}

TEST(FingerprintTest, CombineIsOrderSensitive) {
  EXPECT_NE(CombineFingerprints(1, 2), CombineFingerprints(2, 1));
}

TEST(FingerprintTest, TypeNormalizersTakePerTypeMax) {
  core::InteractionList interactions;
  core::Interaction it;
  it.region = 0;
  it.type = 0;
  it.orders = 5.0;
  interactions.push_back(it);
  it.orders = 9.0;
  interactions.push_back(it);
  it.type = 2;
  it.orders = 4.0;
  interactions.push_back(it);
  it.type = 7;  // out of range for num_types = 3: ignored
  interactions.push_back(it);
  const std::vector<double> norm = TypeNormalizers(3, interactions);
  ASSERT_EQ(norm.size(), 3u);
  EXPECT_DOUBLE_EQ(norm[0], 9.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.0);
  EXPECT_DOUBLE_EQ(norm[2], 4.0);
}

// --- ScoreCache -------------------------------------------------------

constexpr uint64_t kEpoch = 1;

TEST(ScoreCacheTest, MissThenHit) {
  ScoreCache cache(8, 2);
  double score = 0.0;
  EXPECT_FALSE(cache.Lookup(ScoreCache::Key(1, 2), kEpoch, &score));
  cache.Insert(ScoreCache::Key(1, 2), kEpoch, 0.75);
  EXPECT_TRUE(cache.Lookup(ScoreCache::Key(1, 2), kEpoch, &score));
  EXPECT_DOUBLE_EQ(score, 0.75);
  EXPECT_EQ(cache.size(), 1);
}

TEST(ScoreCacheTest, KeySeparatesTypeAndRegion) {
  EXPECT_NE(ScoreCache::Key(1, 2), ScoreCache::Key(2, 1));
  EXPECT_NE(ScoreCache::Key(0, 7), ScoreCache::Key(7, 0));
}

TEST(ScoreCacheTest, EvictsLeastRecentlyUsed) {
  // One shard, two slots: inserting a third evicts the least recently
  // *touched* entry, not the oldest inserted.
  ScoreCache cache(2, 1);
  cache.Insert(1, kEpoch, 1.0);
  cache.Insert(2, kEpoch, 2.0);
  double score = 0.0;
  EXPECT_TRUE(cache.Lookup(1, kEpoch, &score));  // refresh key 1
  cache.Insert(3, kEpoch, 3.0);                  // evicts key 2
  EXPECT_TRUE(cache.Lookup(1, kEpoch, &score));
  EXPECT_FALSE(cache.Lookup(2, kEpoch, &score));
  EXPECT_TRUE(cache.Lookup(3, kEpoch, &score));
  EXPECT_EQ(cache.size(), 2);
}

TEST(ScoreCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  ScoreCache cache(4, 1);
  cache.Insert(9, kEpoch, 1.0);
  cache.Insert(9, kEpoch, 2.0);
  double score = 0.0;
  EXPECT_TRUE(cache.Lookup(9, kEpoch, &score));
  EXPECT_DOUBLE_EQ(score, 2.0);
  EXPECT_EQ(cache.size(), 1);
}

TEST(ScoreCacheTest, ZeroCapacityDisables) {
  ScoreCache cache(0, 4);
  cache.Insert(1, kEpoch, 1.0);
  double score = 0.0;
  EXPECT_FALSE(cache.Lookup(1, kEpoch, &score));
  EXPECT_FALSE(cache.LookupStale(1, &score));
  EXPECT_EQ(cache.size(), 0);
}

TEST(ScoreCacheTest, WrongEpochIsAMissButStaysReachableStale) {
  ScoreCache cache(8, 2);
  cache.Insert(5, /*epoch=*/1, 0.25);
  double score = 0.0;
  // A fresh lookup from a later epoch must never see the old score.
  EXPECT_FALSE(cache.Lookup(5, /*epoch=*/2, &score));
  // The degraded ladder still can, and learns which epoch tagged it.
  uint64_t entry_epoch = 0;
  EXPECT_TRUE(cache.LookupStale(5, &score, &entry_epoch));
  EXPECT_DOUBLE_EQ(score, 0.25);
  EXPECT_EQ(entry_epoch, 1u);
}

TEST(ScoreCacheTest, InsertRetagsTheEpoch) {
  ScoreCache cache(8, 2);
  cache.Insert(5, /*epoch=*/1, 0.25);
  cache.Insert(5, /*epoch=*/2, 0.5);
  double score = 0.0;
  EXPECT_FALSE(cache.Lookup(5, /*epoch=*/1, &score));
  EXPECT_TRUE(cache.Lookup(5, /*epoch=*/2, &score));
  EXPECT_DOUBLE_EQ(score, 0.5);
  EXPECT_EQ(cache.size(), 1);
}

TEST(ScoreCacheTest, InvalidateDropsEveryEpoch) {
  ScoreCache cache(8, 2);
  cache.Insert(1, /*epoch=*/1, 1.0);
  cache.Insert(2, /*epoch=*/2, 2.0);
  cache.Invalidate();
  double score = 0.0;
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.LookupStale(1, &score));
  EXPECT_FALSE(cache.LookupStale(2, &score));
}

TEST(ScoreCacheTest, StatsCountEveryOutcome) {
  ScoreCache cache(2, 1);
  double score = 0.0;
  EXPECT_FALSE(cache.Lookup(1, kEpoch, &score));  // miss
  cache.Insert(1, kEpoch, 1.0);
  cache.Insert(2, kEpoch, 2.0);
  EXPECT_TRUE(cache.Lookup(1, kEpoch, &score));  // hit
  cache.Insert(3, kEpoch, 3.0);                  // evicts 2
  EXPECT_TRUE(cache.LookupStale(3, &score));     // stale hit
  const ScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
}

TEST(ScoreCacheTest, CapacityFromEnv) {
  ::setenv("O2SR_SERVE_CACHE", "123", 1);
  EXPECT_EQ(ScoreCache::CapacityFromEnv(7), 123);
  ::setenv("O2SR_SERVE_CACHE", "0", 1);
  EXPECT_EQ(ScoreCache::CapacityFromEnv(7), 0);
  ::setenv("O2SR_SERVE_CACHE", "-4", 1);  // out of range -> clamped, warned
  EXPECT_EQ(ScoreCache::CapacityFromEnv(7), 0);
  ::unsetenv("O2SR_SERVE_CACHE");
  EXPECT_EQ(ScoreCache::CapacityFromEnv(7), 7);
}

TEST(ScoreCacheDeathTest, GarbageCapacityIsFatal) {
  ::setenv("O2SR_SERVE_CACHE", "nonsense", 1);
  EXPECT_DEATH(ScoreCache::CapacityFromEnv(7), "O2SR_SERVE_CACHE='nonsense'");
  ::unsetenv("O2SR_SERVE_CACHE");
}

// --- Snapshot container -----------------------------------------------

SnapshotMeta StubMeta() {
  SnapshotMeta meta;
  meta.model_name = "Stub";
  meta.config_hash = 42;
  meta.num_regions = 10;
  meta.num_types = 3;
  meta.type_norm = {4.0, 0.0, 9.5};
  return meta;
}

TEST(SnapshotTest, RoundTripsMetaAndParameters) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_roundtrip.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());

  const auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta.model_name, "Stub");
  EXPECT_EQ(loaded->meta.config_hash, 42u);
  EXPECT_EQ(loaded->meta.num_regions, 10);
  EXPECT_EQ(loaded->meta.num_types, 3);
  ASSERT_EQ(loaded->meta.type_norm.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded->meta.type_norm[2], 9.5);

  // Restore into a structurally identical model with different values.
  StubRecommender other(10);
  for (auto& p : other.mutable_parameter_store()->params()) {
    p->value.Fill(0.0f);
  }
  ASSERT_TRUE(RestoreModel(*loaded, other, 42).ok());
  const auto& src = model.parameter_store()->params();
  const auto& dst = other.parameter_store()->params();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    for (size_t j = 0; j < src[i]->value.size(); ++j) {
      EXPECT_EQ(src[i]->value.data()[j], dst[i]->value.data()[j]);
    }
  }
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  const auto loaded = LoadSnapshot(TempPath("snap_missing.snap"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, CorruptPayloadIsDataLoss) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_corrupt.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip a payload byte
  WriteFileRaw(path, bytes);
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, TruncationIsDataLoss) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_truncated.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());
  const std::string bytes = ReadFile(path);
  WriteFileRaw(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, WrongMagicIsDataLoss) {
  const std::string path = TempPath("snap_magic.snap");
  ASSERT_TRUE(
      nn::WriteContainerFile(path, "O2SRXXXX", kSnapshotFormatVersion, "p")
          .ok());
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, FutureVersionIsFailedPrecondition) {
  const std::string path = TempPath("snap_version.snap");
  ASSERT_TRUE(nn::WriteContainerFile(path, kSnapshotMagic,
                                     kSnapshotFormatVersion + 1, "p")
                  .ok());
  EXPECT_EQ(LoadSnapshot(path).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, RestoreRefusesWrongModelName) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_name.snap");
  SnapshotMeta meta = StubMeta();
  meta.model_name = "SomebodyElse";
  ASSERT_TRUE(ExportSnapshot(path, meta, model).ok());
  const auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  const common::Status status = RestoreModel(*loaded, model, 42);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("SomebodyElse"), std::string::npos);
}

TEST(SnapshotTest, RestoreRefusesConfigHashMismatch) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_hash.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());
  const auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(RestoreModel(*loaded, model, 43).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, RestoreRefusesShapeMismatchWithoutTouchingTheModel) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_shape.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());
  const auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());

  // A model with the same names but a different table shape.
  class OtherShape : public StubRecommender {
   public:
    OtherShape() : StubRecommender(10) {
      mutable_parameter_store()->params().clear();
      Rng rng(5);
      mutable_parameter_store()->CreateNormal("stub.table", 2, 2, 1.0, rng);
      mutable_parameter_store()->CreateZeros("stub.bias", 1, 3);
    }
  } other;
  const float before = other.parameter_store()->params()[0]->value.at(0, 0);
  EXPECT_EQ(RestoreModel(*loaded, other, 42).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(other.parameter_store()->params()[0]->value.at(0, 0), before);
}

// Satellite hardening (DESIGN.md §10): *every* byte-truncation of a valid
// snapshot must yield a clean Status — never a crash, hang, or partial
// restore. This sweeps all prefixes, which covers torn headers, torn
// payloads and torn checksums alike.
TEST(SnapshotTest, EveryByteTruncationFailsCleanly) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_sweep.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 0u);
  const std::string truncated_path = TempPath("snap_sweep_cut.snap");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileRaw(truncated_path, bytes.substr(0, len));
    const auto loaded = LoadSnapshot(truncated_path);
    ASSERT_FALSE(loaded.ok()) << "length " << len << " of " << bytes.size();
    ASSERT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "length " << len << ": " << loaded.status();
  }
}

TEST(SnapshotTest, TornFileSplicingTwoSnapshotsIsDataLoss) {
  // A torn write: the first half of one valid snapshot, the second half of
  // another (different parameter values). Sizes match, magic matches — the
  // checksum must still refuse it.
  StubRecommender a(10), b(10);
  for (auto& p : b.mutable_parameter_store()->params()) p->value.Fill(3.5f);
  const std::string path_a = TempPath("snap_torn_a.snap");
  const std::string path_b = TempPath("snap_torn_b.snap");
  ASSERT_TRUE(ExportSnapshot(path_a, StubMeta(), a).ok());
  ASSERT_TRUE(ExportSnapshot(path_b, StubMeta(), b).ok());
  const std::string bytes_a = ReadFile(path_a);
  const std::string bytes_b = ReadFile(path_b);
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  // Cut just past the first differing byte: the splice then carries at
  // least one byte of A inside B's checksummed payload. (A naive midpoint
  // cut can fall after all the differences and rebuild B exactly.)
  size_t first_diff = 0;
  while (first_diff < bytes_a.size() &&
         bytes_a[first_diff] == bytes_b[first_diff]) {
    ++first_diff;
  }
  ASSERT_LT(first_diff, bytes_a.size());
  const std::string torn =
      bytes_a.substr(0, first_diff + 1) + bytes_b.substr(first_diff + 1);
  const std::string torn_path = TempPath("snap_torn.snap");
  WriteFileRaw(torn_path, torn);
  EXPECT_EQ(LoadSnapshot(torn_path).status().code(), StatusCode::kDataLoss);
}

// --- Quarantine -------------------------------------------------------

TEST(QuarantineTest, MovesFileAndWritesReasonRecord) {
  StubRecommender model(10);
  const std::string path = TempPath("snap_quarantine.snap");
  ASSERT_TRUE(ExportSnapshot(path, StubMeta(), model).ok());
  const auto quarantined = QuarantineSnapshot(path, "checksum failure");
  ASSERT_TRUE(quarantined.ok()) << quarantined.status();
  // Original gone, quarantined copy + reason record present.
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kNotFound);
  EXPECT_NE(quarantined->find(".quarantine"), std::string::npos);
  EXPECT_TRUE(LoadSnapshot(*quarantined).ok());
  const std::string reason = ReadFile(*quarantined + ".reason");
  EXPECT_NE(reason.find("checksum failure"), std::string::npos);
}

TEST(QuarantineTest, MissingFileIsNotFound) {
  const auto quarantined =
      QuarantineSnapshot(TempPath("snap_quarantine_missing.snap"), "x");
  EXPECT_EQ(quarantined.status().code(), StatusCode::kNotFound);
}

// --- ServingEngine ----------------------------------------------------

ServingOptions NoCache() {
  ServingOptions options;
  options.cache_capacity = 0;
  return options;
}

TEST(ServingEngineTest, NullModelIsInvalidArgument) {
  EXPECT_EQ(ServingEngine::Create(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServingEngineTest, RanksByScoreDescendingThenRegion) {
  StubRecommender model(10);
  const auto engine = ServingEngine::Create(&model, NoCache()).value();
  // Scorable candidates: 0, 2, 4, 6, 8 with scores equal to the region id.
  const auto ranked =
      engine->RankSites(0, {0, 2, 4, 6, 8}, 3).value();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].region, 8);
  EXPECT_EQ(ranked[1].region, 6);
  EXPECT_EQ(ranked[2].region, 4);
  EXPECT_DOUBLE_EQ(ranked[0].score, 8.0);
}

TEST(ServingEngineTest, SkipsUnscorableAndDuplicateCandidates) {
  StubRecommender model(10);
  const auto engine = ServingEngine::Create(&model, NoCache()).value();
  // 1, 3 are odd (outside the domain); -5 and 99 are out of bounds; 4
  // repeats.
  const auto ranked =
      engine->RankSites(1, {4, 1, 4, 3, -5, 99, 2}, 10).value();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].region, 4);
  EXPECT_EQ(ranked[1].region, 2);
  EXPECT_DOUBLE_EQ(ranked[0].score, StubRecommender::Score(4, 1));
}

TEST(ServingEngineTest, KZeroAndNegativeK) {
  StubRecommender model(10);
  const auto engine = ServingEngine::Create(&model, NoCache()).value();
  EXPECT_TRUE(engine->RankSites(0, {0, 2}, 0)->empty());
  EXPECT_EQ(engine->RankSites(0, {0, 2}, -1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServingEngineTest, CacheAvoidsRescoringWithoutChangingResults) {
  StubRecommender model(10);
  ServingOptions options;
  options.cache_capacity = 64;
  const auto engine = ServingEngine::Create(&model, options).value();

  const auto cold = engine->RankSites(2, {0, 2, 4, 6, 8}, 5).value();
  const int calls_after_cold = model.predict_calls();
  EXPECT_GT(calls_after_cold, 0);

  const auto warm = engine->RankSites(2, {0, 2, 4, 6, 8}, 5).value();
  EXPECT_EQ(model.predict_calls(), calls_after_cold);  // all hits

  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].region, warm[i].region);
    EXPECT_EQ(cold[i].score, warm[i].score);  // bit-identical
  }
}

TEST(ServingEngineTest, ScoreMatchesPredictThroughTheCache) {
  StubRecommender model(10);
  ServingOptions options;
  options.cache_capacity = 4;  // small: forces evictions across calls
  const auto engine = ServingEngine::Create(&model, options).value();
  core::InteractionList pairs;
  for (int region : {0, 2, 4, 6, 8, 0, 2}) {
    core::Interaction it;
    it.region = region;
    it.type = 1;
    pairs.push_back(it);
  }
  for (int round = 0; round < 3; ++round) {
    const auto scores = engine->Score(pairs);
    ASSERT_TRUE(scores.ok());
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ((*scores)[i],
                StubRecommender::Score(pairs[i].region, pairs[i].type));
    }
  }
}

// --- ServingEngine error paths (previously untested) ------------------

TEST(ServingEngineErrorTest, EmptyCandidateListIsAnEmptyResponse) {
  StubRecommender model(10);
  const auto engine = ServingEngine::Create(&model, NoCache()).value();
  const auto ranked = engine->RankSites(0, {}, 5);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_TRUE(ranked->empty());
  // The full-contract API agrees and still tags the (vacuously fresh) tier.
  RankRequest request;
  request.type = 0;
  request.k = 5;
  const auto response = engine->Rank(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->sites.empty());
  EXPECT_EQ(response->tier, ServeTier::kFresh);
}

TEST(ServingEngineErrorTest, KLargerThanCandidatePoolReturnsWholePool) {
  StubRecommender model(10);
  const auto engine = ServingEngine::Create(&model, NoCache()).value();
  const auto ranked = engine->RankSites(0, {0, 2, 4}, 1000);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ASSERT_EQ(ranked->size(), 3u);  // the whole scorable pool, ranked
  EXPECT_EQ((*ranked)[0].region, 4);
  EXPECT_EQ((*ranked)[2].region, 0);
}

TEST(ServingEngineErrorTest, UnknownStoreTypeIsInvalidArgument) {
  StubRecommender model(10);
  // Even with a prior configured: a contract violation must surface, never
  // be silently served from the fallback ladder.
  ServingOptions options = NoCache();
  core::InteractionList prior_obs;
  core::Interaction it;
  it.region = 0;
  it.type = 0;
  it.orders = 1.0;
  prior_obs.push_back(it);
  options.prior = BuildPopularityPrior(10, prior_obs);
  const auto engine = ServingEngine::Create(&model, options).value();
  const auto ranked = engine->RankSites(/*type=*/77, {0, 2, 4}, 3);
  ASSERT_FALSE(ranked.ok());
  EXPECT_EQ(ranked.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ranked.status().message().find("77"), std::string::npos);
}

TEST(ServingEngineErrorTest, ServingPredictBeforePrepareServingFails) {
  core::O2SiteRecRecommender model(core::O2SiteRecConfig{});
  core::InteractionList pairs;
  core::Interaction it;
  it.region = 0;
  it.type = 0;
  pairs.push_back(it);
  const auto scores = model.ServingPredict(pairs);
  ASSERT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServingEngineErrorTest, CreateRefusesAModelWithoutStructure) {
  // FinalizeServing fails before Train/PrepareServing, so Create must too.
  core::O2SiteRecRecommender model(core::O2SiteRecConfig{});
  const auto engine = ServingEngine::Create(&model);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace o2sr::serve
