#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace o2sr::serve {
namespace {

using common::StatusCode;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFileRaw(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// A turnstile for blocking a model's Predict mid-flight: `entered` tells
// the test the scorer is actually inside the call (not merely admitted).
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = true;
  std::atomic<int> entered{0};

  void Close() {
    std::lock_guard<std::mutex> lock(mutex);
    open = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Pass() {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

// A recommender whose scores depend on one restorable parameter, so a
// snapshot swap observably changes what the engine serves:
//   score(region, type) = scale * (1 + region + 100 * type)
class ScaledStub : public core::SiteRecommender {
 public:
  explicit ScaledStub(int num_regions, float scale, Gate* gate = nullptr)
      : num_regions_(num_regions), gate_(gate) {
    store_.CreateZeros("scaled.scale", 1, 1);
    store_.params()[0]->value.Fill(scale);
  }

  std::string Name() const override { return "ScaledStub"; }
  common::Status Train(const core::TrainContext&) override {
    return common::Status::Ok();
  }
  common::StatusOr<std::vector<double>> Predict(
      const core::InteractionList& pairs) const override {
    if (gate_ != nullptr) gate_->Pass();
    std::vector<double> out;
    out.reserve(pairs.size());
    for (const core::Interaction& it : pairs) {
      if (it.type < 0 || it.type >= 10) {
        return common::InvalidArgumentError("scaled stub: unknown type " +
                                            std::to_string(it.type));
      }
      if (!CanScoreRegion(it.region)) {
        return common::InvalidArgumentError("scaled stub: bad region " +
                                            std::to_string(it.region));
      }
      out.push_back(Score(scale(), it.region, it.type));
    }
    return out;
  }
  const nn::ParameterStore* parameter_store() const override {
    return &store_;
  }
  nn::ParameterStore* mutable_parameter_store() override { return &store_; }
  bool CanScoreRegion(int region) const override {
    return region >= 0 && region < num_regions_;
  }

  double scale() const {
    return static_cast<double>(store_.params()[0]->value.at(0, 0));
  }
  static double Score(double scale, int region, int type) {
    return scale * (1.0 + region + 100.0 * type);
  }

 private:
  int num_regions_;
  Gate* gate_;
  nn::ParameterStore store_;
};

constexpr uint64_t kConfigHash = 42;

// Exports a snapshot whose restore sets the stub's scale to `scale`.
std::string ExportScaled(const char* name, float scale) {
  ScaledStub source(10, scale);
  SnapshotMeta meta;
  meta.model_name = "ScaledStub";
  meta.config_hash = kConfigHash;
  meta.num_regions = 10;
  meta.num_types = 10;
  const std::string path = TempPath(name);
  EXPECT_TRUE(ExportSnapshot(path, meta, source).ok());
  return path;
}

RankRequest Request(int type, std::vector<int> candidates, int k) {
  RankRequest request;
  request.type = type;
  request.candidates = std::move(candidates);
  request.k = k;
  return request;
}

// Every test here leaves the global fault injector healthy for the rest of
// the binary.
class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::FaultInjector::ResetGlobalForTest("");
  }
};

// --- Hot snapshot swap ------------------------------------------------

TEST_F(ResilienceTest, SwapPromotesBumpsEpochAndServesTheNewScores) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 64;
  const auto engine = ServingEngine::Create(&base, options).value();
  EXPECT_EQ(engine->epoch(), 1u);

  // Warm the cache against epoch 1.
  const auto before = engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(before.epoch, 1u);
  EXPECT_EQ(before.tier, ServeTier::kFresh);
  EXPECT_DOUBLE_EQ(before.sites[0].score, ScaledStub::Score(1.0, 2, 1));

  const std::string path = ExportScaled("resil_promote.snap", 3.0f);
  SwapOptions swap;
  CanaryQuery canary;
  canary.type = 1;
  canary.candidates = {0, 1, 2};
  canary.k = 2;
  canary.expected = {{2, ScaledStub::Score(3.0, 2, 1)},
                     {1, ScaledStub::Score(3.0, 1, 1)}};
  swap.canaries.push_back(canary);

  const auto report = engine->SwapSnapshot(
      path, std::make_unique<ScaledStub>(10, 0.0f), kConfigHash, swap);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->promoted) << report->reject_reason;
  EXPECT_EQ(report->epoch, 2u);
  EXPECT_EQ(report->canaries_run, 1u);
  EXPECT_TRUE(report->quarantine_path.empty());
  EXPECT_EQ(engine->epoch(), 2u);

  // The warm epoch-1 cache entries must never be served as fresh now:
  // the response carries the new model's scores, fresh tier, epoch 2.
  const auto after = engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.tier, ServeTier::kFresh);
  EXPECT_DOUBLE_EQ(after.sites[0].score, ScaledStub::Score(3.0, 2, 1));

  // A promoted snapshot stays where it was published.
  EXPECT_TRUE(LoadSnapshot(path).ok());
}

TEST_F(ResilienceTest, SwapRejectsACorruptSnapshotAndQuarantinesIt) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 0;
  const auto engine = ServingEngine::Create(&base, options).value();

  const std::string path = ExportScaled("resil_corrupt.snap", 3.0f);
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x5a;
  WriteFileRaw(path, bytes);

  const auto report = engine->SwapSnapshot(
      path, std::make_unique<ScaledStub>(10, 0.0f), kConfigHash);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->promoted);
  EXPECT_EQ(report->reject_reason.code(), StatusCode::kDataLoss);
  ASSERT_NE(report->quarantine_path.find(".quarantine"), std::string::npos);
  // The snapshot moved out of the deploy path, with a reason record.
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ReadFile(report->quarantine_path + ".reason").empty());

  // The original model keeps serving, untouched, at epoch 1.
  EXPECT_EQ(engine->epoch(), 1u);
  const auto response = engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(response.tier, ServeTier::kFresh);
  EXPECT_DOUBLE_EQ(response.sites[0].score, ScaledStub::Score(1.0, 2, 1));
}

TEST_F(ResilienceTest, SwapRejectsACanaryMismatchWithoutPollutingTheCache) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 64;
  const auto engine = ServingEngine::Create(&base, options).value();

  const std::string path = ExportScaled("resil_canary.snap", 3.0f);
  SwapOptions swap;
  CanaryQuery canary;
  canary.type = 1;
  canary.candidates = {0, 1, 2};
  canary.k = 1;
  // Golden expectations from the *old* model: the scale-3 restore diverges.
  canary.expected = {{2, ScaledStub::Score(1.0, 2, 1)}};
  swap.canaries.push_back(canary);

  const auto report = engine->SwapSnapshot(
      path, std::make_unique<ScaledStub>(10, 0.0f), kConfigHash, swap);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->promoted);
  EXPECT_EQ(report->canaries_run, 1u);
  EXPECT_EQ(report->reject_reason.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(report->quarantine_path.empty());

  // Canary scoring ran against the staged model directly — nothing of it
  // may be visible through the serving path.
  EXPECT_EQ(engine->epoch(), 1u);
  const auto response = engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(response.tier, ServeTier::kFresh);
  EXPECT_DOUBLE_EQ(response.sites[0].score, ScaledStub::Score(1.0, 2, 1));
}

TEST_F(ResilienceTest, SwapRejectsAConfigFingerprintMismatch) {
  ScaledStub base(10, 1.0f);
  const auto engine = ServingEngine::Create(&base).value();
  const std::string path = ExportScaled("resil_hash.snap", 3.0f);
  const auto report = engine->SwapSnapshot(
      path, std::make_unique<ScaledStub>(10, 0.0f), kConfigHash + 1);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->promoted);
  EXPECT_EQ(report->reject_reason.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->epoch(), 1u);
}

TEST_F(ResilienceTest, SwapWithNullStagedModelIsACallError) {
  ScaledStub base(10, 1.0f);
  const auto engine = ServingEngine::Create(&base).value();
  const auto report =
      engine->SwapSnapshot(TempPath("unused.snap"), nullptr, kConfigHash);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResilienceTest, InFlightQueryPinsItsModelAcrossASwap) {
  Gate gate;
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 0;
  const auto engine = ServingEngine::Create(&base, options).value();

  // Swap in an owned, gate-controlled model at epoch 2.
  {
    const std::string path = ExportScaled("resil_pin2.snap", 2.0f);
    const auto report = engine->SwapSnapshot(
        path, std::make_unique<ScaledStub>(10, 0.0f, &gate), kConfigHash);
    ASSERT_TRUE(report.ok() && report->promoted) << report->reject_reason;
  }

  gate.Close();
  common::StatusOr<RankResponse> inflight =
      common::InternalError("not served yet");
  std::thread query([&] { inflight = engine->Rank(Request(1, {0, 1, 2}, 3)); });
  // Wait until the query is provably *inside* the epoch-2 model's scorer.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (gate.entered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(gate.entered.load(), 1);

  // Promote epoch 3 while the query is mid-flight on epoch 2.
  {
    const std::string path = ExportScaled("resil_pin3.snap", 3.0f);
    const auto report = engine->SwapSnapshot(
        path, std::make_unique<ScaledStub>(10, 0.0f), kConfigHash);
    ASSERT_TRUE(report.ok() && report->promoted) << report->reject_reason;
  }
  EXPECT_EQ(engine->epoch(), 3u);

  gate.Open();
  query.join();
  // The in-flight query finished on the model it pinned: epoch 2 scores,
  // fresh tier — the displaced model was kept alive for it.
  ASSERT_TRUE(inflight.ok()) << inflight.status();
  EXPECT_EQ(inflight->epoch, 2u);
  EXPECT_EQ(inflight->tier, ServeTier::kFresh);
  EXPECT_DOUBLE_EQ(inflight->sites[0].score, ScaledStub::Score(2.0, 2, 1));

  const auto fresh = engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(fresh.epoch, 3u);
  EXPECT_DOUBLE_EQ(fresh.sites[0].score, ScaledStub::Score(3.0, 2, 1));
}

// --- Fallback ladder + health -----------------------------------------

TEST_F(ResilienceTest, StaleCacheTierServesTheDisplacedEpochUnderScorerFaults) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 64;
  options.health_recovery_streak = 2;
  const auto engine = ServingEngine::Create(&base, options).value();

  // Warm epoch-1 entries, then promote epoch 2.
  (void)engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  const std::string path = ExportScaled("resil_stale.snap", 3.0f);
  ASSERT_TRUE(engine
                  ->SwapSnapshot(path, std::make_unique<ScaledStub>(10, 0.0f),
                                 kConfigHash)
                  ->promoted);

  // Fresh scoring is down: the ladder answers from the stale epoch-1
  // entries, labeled as such, and health degrades.
  common::FaultInjector::ResetGlobalForTest("score=error:1.0");
  const auto degraded = engine->Rank(Request(1, {0, 1, 2}, 3));
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->tier, ServeTier::kStaleCache);
  EXPECT_EQ(degraded->epoch, 2u);
  EXPECT_DOUBLE_EQ(degraded->sites[0].score, ScaledStub::Score(1.0, 2, 1));
  EXPECT_EQ(engine->health(), ServeHealth::kDegraded);

  // Scorer recovers: responses are fresh (new model's scores) and after
  // the recovery streak the health machine returns to SERVING.
  common::FaultInjector::ResetGlobalForTest("");
  const auto fresh1 = engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(fresh1.tier, ServeTier::kFresh);
  EXPECT_DOUBLE_EQ(fresh1.sites[0].score, ScaledStub::Score(3.0, 2, 1));
  EXPECT_EQ(engine->health(), ServeHealth::kDegraded);  // streak 1 of 2
  (void)engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  EXPECT_EQ(engine->health(), ServeHealth::kServing);
}

TEST_F(ResilienceTest, PriorTierAnswersWhenModelAndCacheCannot) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 0;  // no stale rung
  core::InteractionList observed;
  for (const auto& [region, orders] :
       std::vector<std::pair<int, double>>{{0, 5.0}, {1, 10.0}, {2, 20.0}}) {
    core::Interaction it;
    it.region = region;
    it.type = 1;
    it.orders = orders;
    observed.push_back(it);
  }
  options.prior = BuildPopularityPrior(10, observed);
  const auto engine = ServingEngine::Create(&base, options).value();

  common::FaultInjector::ResetGlobalForTest("score=error:1.0");
  const auto response = engine->Rank(Request(1, {0, 1, 2}, 3));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->tier, ServeTier::kPrior);
  ASSERT_EQ(response->sites.size(), 3u);
  EXPECT_EQ(response->sites[0].region, 2);
  EXPECT_DOUBLE_EQ(response->sites[0].score, 1.0);   // 20 / 20
  EXPECT_DOUBLE_EQ(response->sites[1].score, 0.5);   // 10 / 20
  EXPECT_DOUBLE_EQ(response->sites[2].score, 0.25);  // 5 / 20
  EXPECT_EQ(engine->health(), ServeHealth::kDegraded);

  // A pair no rung can answer fails with the original scorer error.
  const auto exhausted = engine->Rank(Request(1, {4}, 1));
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(exhausted.status().message().find("exhausted the fallback ladder"),
            std::string::npos);
}

TEST_F(ResilienceTest, InjectedScorerDelayPushesPastTheDeadlineIntoTheLadder) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 0;
  core::InteractionList observed;
  core::Interaction it;
  it.region = 2;
  it.type = 1;
  it.orders = 8.0;
  observed.push_back(it);
  options.prior = BuildPopularityPrior(10, observed);
  const auto engine = ServingEngine::Create(&base, options).value();

  common::FaultInjector::ResetGlobalForTest("score=delay:30ms");
  RankRequest request = Request(1, {2}, 1);
  request.deadline = Deadline::AfterMs(5.0);
  const auto response = engine->Rank(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->tier, ServeTier::kPrior);
  EXPECT_EQ(engine->health(), ServeHealth::kDegraded);
}

// --- Shedding ----------------------------------------------------------

TEST_F(ResilienceTest, PreExpiredDeadlineIsShed) {
  ScaledStub base(10, 1.0f);
  const auto engine = ServingEngine::Create(&base).value();
  RankRequest request = Request(1, {0, 1, 2}, 3);
  request.deadline = Deadline::AfterMs(-1.0);
  const auto response = engine->Rank(request);
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine->shed_count(), 1u);
}

TEST_F(ResilienceTest, AdmissionHighWaterMarkShedsTheOverflowRequest) {
  Gate gate;
  gate.Close();
  ScaledStub base(10, 1.0f, &gate);
  ServingOptions options;
  options.cache_capacity = 0;
  options.max_inflight = 1;
  const auto engine = ServingEngine::Create(&base, options).value();

  common::StatusOr<RankResponse> first =
      common::InternalError("not served yet");
  std::thread holder([&] { first = engine->Rank(Request(1, {0, 1, 2}, 3)); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (gate.entered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(gate.entered.load(), 1);
  EXPECT_EQ(engine->inflight(), 1);

  const auto shed = engine->Rank(Request(1, {0, 1, 2}, 3));
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine->shed_count(), 1u);

  gate.Open();
  holder.join();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->tier, ServeTier::kFresh);
  EXPECT_EQ(engine->inflight(), 0);
}

TEST_F(ResilienceTest, LameDuckShedsEveryNewRequest) {
  ScaledStub base(10, 1.0f);
  const auto engine = ServingEngine::Create(&base).value();
  ASSERT_TRUE(engine->Rank(Request(1, {0, 1, 2}, 3)).ok());
  engine->EnterLameDuck();
  EXPECT_EQ(engine->health(), ServeHealth::kLameDuck);
  const auto response = engine->Rank(Request(1, {0, 1, 2}, 3));
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(response.status().message().find("LAME_DUCK"), std::string::npos);
  EXPECT_EQ(engine->RankSites(1, {0}, 1).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(engine->shed_count(), 2u);
  // Terminal: a fresh-looking world does not resurrect it.
  EXPECT_EQ(engine->health(), ServeHealth::kLameDuck);
}

// --- Deadline edge cases ------------------------------------------------

TEST(DeadlineTest, EdgeSemantics) {
  EXPECT_TRUE(Deadline::Infinite().infinite());
  EXPECT_FALSE(Deadline::Infinite().expired());
  EXPECT_EQ(Deadline::Infinite().remaining_ms(),
            std::numeric_limits<double>::infinity());
  // Non-positive budgets are born expired.
  EXPECT_TRUE(Deadline::AfterMs(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMs(-3.0).expired());
  EXPECT_LE(Deadline::AfterMs(-3.0).remaining_ms(), 0.0);
  // A generous budget is not expired and reports positive remaining time.
  const Deadline generous = Deadline::AfterMs(60000.0);
  EXPECT_FALSE(generous.infinite());
  EXPECT_FALSE(generous.expired());
  EXPECT_GT(generous.remaining_ms(), 0.0);
}

TEST_F(ResilienceTest, ZeroMsBudgetIsShedAtAdmission) {
  ScaledStub base(10, 1.0f);
  const auto engine = ServingEngine::Create(&base).value();
  RankRequest request = Request(1, {0, 1, 2}, 3);
  request.deadline = Deadline::AfterMs(0.0);
  const auto response = engine->Rank(request);
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(response.status().message().find("deadline"), std::string::npos)
      << response.status();
  EXPECT_EQ(engine->shed_count(), 1u);
  // Shedding is load protection, not sickness: health is untouched.
  EXPECT_EQ(engine->health(), ServeHealth::kServing);
}

TEST_F(ResilienceTest,
       DeadlineExpiringBetweenCacheMissAndScoreFallsToStaleCache) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 64;
  const auto engine = ServingEngine::Create(&base, options).value();

  // Warm epoch-1 entries, then promote epoch 2 so those entries are stale.
  (void)engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  const std::string path = ExportScaled("resil_ddl_stale.snap", 3.0f);
  ASSERT_TRUE(engine
                  ->SwapSnapshot(path, std::make_unique<ScaledStub>(10, 0.0f),
                                 kConfigHash)
                  ->promoted);

  // The request is admitted with budget to spare; the injected scorer delay
  // then burns it before the model runs, and the engine answers from the
  // stale rung instead of scoring a result nobody is waiting for.
  common::FaultInjector::ResetGlobalForTest("score=delay:30ms");
  RankRequest request = Request(1, {0, 1, 2}, 3);
  request.deadline = Deadline::AfterMs(10.0);
  const auto response = engine->Rank(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->tier, ServeTier::kStaleCache);
  EXPECT_EQ(response->epoch, 2u);
  // Stale values are the displaced epoch-1 model's scores — proof the
  // epoch-2 scorer was skipped.
  EXPECT_DOUBLE_EQ(response->sites[0].score, ScaledStub::Score(1.0, 2, 1));
}

// --- SLO monitor + health-change notification --------------------------

TEST_F(ResilienceTest, SloMonitorSeesEveryOutcomeClass) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 0;
  options.slo_ms = 1000.0;  // generous: only structural badness counts
  options.slo_target = 0.9;
  core::InteractionList observed;
  core::Interaction it;
  it.region = 2;
  it.type = 1;
  it.orders = 8.0;
  observed.push_back(it);
  options.prior = BuildPopularityPrior(10, observed);
  const auto engine = ServingEngine::Create(&base, options).value();

  // Good request.
  (void)engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  // Shed request (pre-expired deadline).
  RankRequest expired = Request(1, {0, 1, 2}, 3);
  expired.deadline = Deadline::AfterMs(-1.0);
  EXPECT_FALSE(engine->Rank(expired).ok());
  // Degraded request: scorer down, prior answers.
  common::FaultInjector::ResetGlobalForTest("score=error:1.0");
  EXPECT_EQ(engine->Rank(Request(1, {2}, 1))->tier, ServeTier::kPrior);
  // Failed request (ladder exhausted) also counts as bad.
  EXPECT_FALSE(engine->Rank(Request(1, {4}, 1)).ok());
  common::FaultInjector::ResetGlobalForTest("");

  const obs::SloSnapshot snap = engine->slo().Snapshot();
  EXPECT_DOUBLE_EQ(snap.config.slo_ms, 1000.0);
  EXPECT_DOUBLE_EQ(snap.config.target, 0.9);
  EXPECT_EQ(snap.requests, 4u);
  EXPECT_EQ(snap.bad, 3u);
  EXPECT_EQ(snap.shed, 2u);       // admission shed + exhausted ladder
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_DOUBLE_EQ(snap.bad_fraction, 0.75);
  EXPECT_TRUE(snap.breached);
}

TEST_F(ResilienceTest, HealthChangeCallbackReportsEveryTransition) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  options.cache_capacity = 0;
  options.health_recovery_streak = 1;
  core::InteractionList observed;
  core::Interaction it;
  it.region = 2;
  it.type = 1;
  it.orders = 8.0;
  observed.push_back(it);
  options.prior = BuildPopularityPrior(10, observed);
  std::vector<std::pair<ServeHealth, ServeHealth>> transitions;
  options.on_health_change = [&](ServeHealth from, ServeHealth to) {
    transitions.emplace_back(from, to);
  };
  const auto engine = ServingEngine::Create(&base, options).value();

  // SERVING -> DEGRADED (prior-tier answer), DEGRADED -> SERVING (fresh
  // streak of 1), then SERVING -> LAME_DUCK on drain.
  common::FaultInjector::ResetGlobalForTest("score=error:1.0");
  (void)engine->Rank(Request(1, {2}, 1)).value();
  common::FaultInjector::ResetGlobalForTest("");
  (void)engine->Rank(Request(1, {2}, 1)).value();
  engine->EnterLameDuck();
  engine->EnterLameDuck();  // idempotent: no second notification

  using H = ServeHealth;
  const std::vector<std::pair<H, H>> expected = {
      {H::kServing, H::kDegraded},
      {H::kDegraded, H::kServing},
      {H::kServing, H::kLameDuck},
  };
  EXPECT_EQ(transitions, expected);
}

TEST_F(ResilienceTest, StableHealthNeverInvokesTheCallback) {
  ScaledStub base(10, 1.0f);
  ServingOptions options;
  int calls = 0;
  options.on_health_change = [&](ServeHealth, ServeHealth) { ++calls; };
  const auto engine = ServingEngine::Create(&base, options).value();
  for (int i = 0; i < 5; ++i) {
    (void)engine->Rank(Request(1, {0, 1, 2}, 3)).value();
  }
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace o2sr::serve
