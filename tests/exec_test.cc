// Unit tests of the exec layer: the deterministic fork-join ThreadPool,
// chunked parallel loops/reductions, pool scoping, and the per-pool
// observability instruments.

#include "exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace o2sr::exec {
namespace {

TEST(NumChunksTest, CoversRangeExactly) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 4), 0);
  EXPECT_EQ(ThreadPool::NumChunks(-3, 4), 0);
  EXPECT_EQ(ThreadPool::NumChunks(1, 4), 1);
  EXPECT_EQ(ThreadPool::NumChunks(4, 4), 1);
  EXPECT_EQ(ThreadPool::NumChunks(5, 4), 2);
  EXPECT_EQ(ThreadPool::NumChunks(100, 1), 100);
  EXPECT_EQ(ThreadPool::NumChunks(7, 0), 7);  // grain floored at 1
}

TEST(NumThreadsFromEnvTest, ParsesOverride) {
  ::setenv("O2SR_THREADS", "3", 1);
  EXPECT_EQ(NumThreadsFromEnv(), 3);
  ::setenv("O2SR_THREADS", "100000", 1);
  EXPECT_EQ(NumThreadsFromEnv(), 256);
  ::unsetenv("O2SR_THREADS");
  const int auto_threads = NumThreadsFromEnv();
  EXPECT_GE(auto_threads, 1);
  // 0 is the long-standing "auto" convention: hardware concurrency, never
  // a silent one-thread clamp.
  ::setenv("O2SR_THREADS", "0", 1);
  EXPECT_EQ(NumThreadsFromEnv(), auto_threads);
  ::unsetenv("O2SR_THREADS");
}

TEST(NumThreadsFromEnvDeathTest, GarbageIsFatal) {
  ::setenv("O2SR_THREADS", "garbage", 1);
  EXPECT_DEATH(NumThreadsFromEnv(), "O2SR_THREADS='garbage'");
  ::unsetenv("O2SR_THREADS");
}

class PooledTest : public ::testing::TestWithParam<int> {};

TEST_P(PooledTest, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(GetParam(), "exec.test");
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, /*grain=*/7,
                   [&](int64_t i) { visits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST_P(PooledTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(GetParam(), "exec.test");
  bool called = false;
  pool.ParallelFor(0, 16, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(PooledTest, ParallelReduceSumsExactly) {
  ThreadPool pool(GetParam(), "exec.test");
  constexpr int64_t kN = 1234;
  const int64_t total = pool.ParallelReduce(
      kN, /*grain=*/17, int64_t{0},
      [](int64_t begin, int64_t end) {
        int64_t s = 0;
        for (int64_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST_P(PooledTest, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadPool pool(GetParam(), "exec.test");
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 50;
  std::vector<int64_t> inner_sums(kOuter, 0);
  pool.ParallelFor(kOuter, 1, [&](int64_t o) {
    // A region issued from a worker executes inline on that worker.
    int64_t local = 0;
    pool.ParallelFor(kInner, 8, [&](int64_t i) { local += i; });
    inner_sums[o] = local;
  });
  for (int64_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(inner_sums[o], kInner * (kInner - 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PooledTest,
                         ::testing::Values(1, 2, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// Reduction association is defined by the chunk grid, not the thread
// count: partials fold in chunk order on the calling thread.
TEST(ThreadPoolTest, ReduceAssociationMatchesChunkOrder) {
  // Values chosen so float association matters if the fold order changed.
  constexpr int64_t kN = 4096;
  std::vector<float> values(kN);
  for (int64_t i = 0; i < kN; ++i) {
    values[i] = (i % 2 == 0 ? 1.0f : -1.0f) * (1.0f + 1e-3f * i);
  }
  auto run = [&](ThreadPool& pool) {
    return pool.ParallelReduce(
        kN, /*grain=*/31, 0.0f,
        [&](int64_t begin, int64_t end) {
          float s = 0.0f;
          for (int64_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](float acc, float partial) { return acc + partial; });
  };
  ThreadPool serial(1, "exec.test");
  ThreadPool two(2, "exec.test");
  ThreadPool eight(8, "exec.test");
  const float want = run(serial);
  EXPECT_EQ(want, run(two));    // bit-identical, not just close
  EXPECT_EQ(want, run(eight));
}

TEST(PoolScopeTest, OverridesAndRestoresCurrentPool) {
  ThreadPool& global = ThreadPool::Global();
  EXPECT_EQ(&CurrentPool(), &global);
  ThreadPool outer(2, "exec.test");
  {
    PoolScope outer_scope(&outer);
    EXPECT_EQ(&CurrentPool(), &outer);
    ThreadPool inner(1, "exec.test");
    {
      PoolScope inner_scope(&inner);
      EXPECT_EQ(&CurrentPool(), &inner);
    }
    EXPECT_EQ(&CurrentPool(), &outer);
  }
  EXPECT_EQ(&CurrentPool(), &global);
}

TEST(ThreadPoolMetricsTest, CountsRegionsAndTasks) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  ThreadPool pool(2, "exec.test_metrics");
  obs::Counter* regions = reg.GetCounter("exec.test_metrics.regions");
  obs::Counter* tasks = reg.GetCounter("exec.test_metrics.tasks");
  obs::Gauge* threads = reg.GetGauge("exec.test_metrics.threads");
  obs::Gauge* depth = reg.GetGauge("exec.test_metrics.queue_depth");
  obs::Gauge* util = reg.GetGauge("exec.test_metrics.worker_utilization");

  EXPECT_EQ(threads->value(), 1.0);  // workers exclude the caller
  const uint64_t regions_before = regions->value();
  const uint64_t tasks_before = tasks->value();
  pool.ParallelFor(100, 10, [](int64_t) {});
  EXPECT_EQ(regions->value(), regions_before + 1);
  EXPECT_EQ(tasks->value(), tasks_before + 10);
  EXPECT_EQ(depth->value(), 0.0);  // drained once the region completes
  EXPECT_GE(util->value(), 0.0);
  EXPECT_LE(util->value(), 1.0);
}

TEST(ThreadPoolMetricsTest, InlineRegionsAreCounted) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  ThreadPool pool(1, "exec.test_inline");
  obs::Counter* inline_regions =
      reg.GetCounter("exec.test_inline.inline_regions");
  const uint64_t before = inline_regions->value();
  pool.ParallelFor(50, 10, [](int64_t) {});
  EXPECT_EQ(inline_regions->value(), before + 1);
}

}  // namespace
}  // namespace o2sr::exec
