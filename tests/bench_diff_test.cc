// Tests of the BENCH regression gate (tools/bench_diff_lib.h): field
// classification, direction-aware tolerance judgment, meta-mismatch
// refusal, missing/new field handling and the --ignore-timings mode.

#include <string>

#include <gtest/gtest.h>

#include "bench_diff_lib.h"
#include "obs/json.h"

namespace o2sr::tools {
namespace {

obs::JsonValue Parse(const std::string& text) {
  auto parsed = obs::ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? parsed.value() : obs::JsonValue();
}

// A minimal but fully-shaped BENCH report. `ndcg` / `qps` / `p99` let each
// test move one field class at a time.
std::string Report(double ndcg, double qps, double p99,
                   const char* threads = "4") {
  std::string out = "{\"bench\":\"synthetic\",\"scale\":\"small\","
                    "\"seed_count\":1,\"threads\":";
  out += threads;
  out += ",\"build_type\":\"Release\",\"sanitizer\":\"none\","
         "\"wall_clock_s\":2.5,"
         "\"stages_ms\":{\"train.epoch\":1200.125},"
         "\"cells\":[{\"label\":\"HGT\",\"ndcg@3\":";
  out += obs::JsonNum(ndcg);
  out += ",\"rmse\":0.21,\"types_evaluated\":10}],"
         "\"values\":[{\"label\":\"qps_cold\",\"value\":";
  out += obs::JsonNum(qps);
  out += "},{\"label\":\"p99_ms\",\"value\":";
  out += obs::JsonNum(p99);
  out += "},{\"label\":\"cache_hit_rate\",\"value\":0.9}]}";
  return out;
}

BenchDiffResult Diff(const std::string& base, const std::string& cand,
                     bool ignore_timings = false) {
  BenchDiffOptions options;
  options.ignore_timings = ignore_timings;
  auto result = DiffBenchReports(Parse(base), Parse(cand), options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result.value() : BenchDiffResult();
}

const FieldDiff* FindField(const BenchDiffResult& result,
                           const std::string& label) {
  for (const FieldDiff& f : result.fields) {
    if (f.label == label) return &f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Classification

TEST(ClassifyFieldTest, DirectionsAndTimingFlags) {
  EXPECT_EQ(ClassifyField("qps_cold").direction,
            FieldDirection::kHigherBetter);
  EXPECT_TRUE(ClassifyField("qps_cold").timing);
  EXPECT_EQ(ClassifyField("speedup_threads4").direction,
            FieldDirection::kHigherBetter);
  EXPECT_EQ(ClassifyField("p99_ms").direction, FieldDirection::kLowerBetter);
  EXPECT_TRUE(ClassifyField("p99_ms").timing);
  EXPECT_TRUE(ClassifyField("wall_clock_s").timing);
  EXPECT_TRUE(ClassifyField("wall_clock_s_threads1").timing);
  EXPECT_TRUE(ClassifyField("epoch1_recovery_s").timing);
  EXPECT_TRUE(ClassifyField("stages_ms.train.epoch").timing);
  EXPECT_EQ(ClassifyField("stages_ms.train.epoch").direction,
            FieldDirection::kLowerBetter);

  EXPECT_EQ(ClassifyField("cells.HGT.ndcg@3").direction,
            FieldDirection::kHigherBetter);
  EXPECT_FALSE(ClassifyField("cells.HGT.ndcg@3").timing);
  EXPECT_EQ(ClassifyField("cells.HGT.precision@5").direction,
            FieldDirection::kHigherBetter);
  EXPECT_EQ(ClassifyField("cache_hit_rate").direction,
            FieldDirection::kHigherBetter);
  EXPECT_EQ(ClassifyField("cells.HGT.rmse").direction,
            FieldDirection::kLowerBetter);
  EXPECT_FALSE(ClassifyField("cache_hit_rate").timing);

  // Load-dependent outcomes: still lower-better, but skipped under
  // --ignore-timings because machine speed moves them.
  EXPECT_EQ(ClassifyField("deadline_shed_rate").direction,
            FieldDirection::kLowerBetter);
  EXPECT_TRUE(ClassifyField("deadline_shed_rate").timing);
  EXPECT_EQ(ClassifyField("slo_bad_fraction").direction,
            FieldDirection::kLowerBetter);
  EXPECT_TRUE(ClassifyField("slo_bad_fraction").timing);
  EXPECT_TRUE(ClassifyField("slo_burn_rate").timing);
  EXPECT_TRUE(ClassifyField("slo_breached").timing);
  EXPECT_TRUE(ClassifyField("deadline_degraded_rate").timing);

  // Workload-shape fields: exact match required.
  const FieldPolicy queries = ClassifyField("queries");
  EXPECT_EQ(queries.direction, FieldDirection::kTwoSided);
  EXPECT_DOUBLE_EQ(queries.rel_tol, 0.0);
  EXPECT_EQ(ClassifyField("cells.HGT.types_evaluated").direction,
            FieldDirection::kTwoSided);

  // Saturation-curve fields: thread-count suffixes must not dodge the
  // timing rules, and tenant/batch/query counts are workload shape.
  EXPECT_TRUE(ClassifyField("mt_qps_t4").timing);
  EXPECT_EQ(ClassifyField("mt_speedup_t4").direction,
            FieldDirection::kHigherBetter);
  EXPECT_TRUE(ClassifyField("mt_speedup_t4").timing);
  EXPECT_EQ(ClassifyField("mt_p99_ms_t2").direction,
            FieldDirection::kLowerBetter);
  EXPECT_TRUE(ClassifyField("mt_p99_ms_t2").timing);
  EXPECT_EQ(ClassifyField("mt_total_queries").direction,
            FieldDirection::kTwoSided);
  EXPECT_DOUBLE_EQ(ClassifyField("mt_queries_t2").rel_tol, 0.0);
  EXPECT_EQ(ClassifyField("mt_tenants").direction, FieldDirection::kTwoSided);
  EXPECT_EQ(ClassifyField("mt_batch").direction, FieldDirection::kTwoSided);

  // Out-of-core scale bench (bench_scale): peak RSS is direction-aware
  // (growth regresses) but NOT a timing field — --ignore-timings still
  // checks it — and the dataset/layout shape fields are exact.
  EXPECT_EQ(ClassifyField("peak_rss_mb").direction,
            FieldDirection::kLowerBetter);
  EXPECT_FALSE(ClassifyField("peak_rss_mb").timing);
  for (const char* label :
       {"stores", "orders", "shards", "blocks", "regions", "epochs",
        "block_regions", "types", "mem_budget_mb", "rows"}) {
    EXPECT_EQ(ClassifyField(label).direction, FieldDirection::kTwoSided)
        << label;
    EXPECT_DOUBLE_EQ(ClassifyField(label).rel_tol, 0.0) << label;
    EXPECT_FALSE(ClassifyField(label).timing) << label;
  }
  // The serving deadline budget is a configured constant, not a measured
  // latency: the "budget" rule wins over the "_ms" timing rule, so it is
  // exact-matched even under --ignore-timings.
  EXPECT_EQ(ClassifyField("deadline_budget_ms").direction,
            FieldDirection::kTwoSided);
  EXPECT_FALSE(ClassifyField("deadline_budget_ms").timing);
}

// ---------------------------------------------------------------------------
// Judgment

TEST(BenchDiffTest, SelfDiffIsClean) {
  const std::string report = Report(0.63, 5000.0, 2.0);
  const BenchDiffResult result = Diff(report, report);
  ASSERT_TRUE(result.comparable());
  EXPECT_EQ(result.regressions(), 0);
  EXPECT_EQ(result.improvements(), 0);
  for (const FieldDiff& f : result.fields) {
    EXPECT_EQ(f.status, FieldStatus::kOk) << f.label;
  }
}

TEST(BenchDiffTest, QualityDropIsARegressionRiseIsAnImprovement) {
  const std::string base = Report(0.63, 5000.0, 2.0);
  const BenchDiffResult worse = Diff(base, Report(0.55, 5000.0, 2.0));
  const FieldDiff* ndcg = FindField(worse, "cells.HGT.ndcg@3");
  ASSERT_NE(ndcg, nullptr);
  EXPECT_EQ(ndcg->status, FieldStatus::kRegressed);
  EXPECT_EQ(worse.regressions(), 1);

  const BenchDiffResult better = Diff(base, Report(0.70, 5000.0, 2.0));
  EXPECT_EQ(FindField(better, "cells.HGT.ndcg@3")->status,
            FieldStatus::kImproved);
  EXPECT_EQ(better.regressions(), 0);
}

TEST(BenchDiffTest, ThroughputDropAndLatencyRiseRegress) {
  const std::string base = Report(0.63, 5000.0, 40.0);
  // qps -50% is far past the 25% timing tolerance.
  const BenchDiffResult slow = Diff(base, Report(0.63, 2500.0, 40.0));
  EXPECT_EQ(FindField(slow, "qps_cold")->status, FieldStatus::kRegressed);
  // p99 40 -> 80 ms is past both the 25% relative and 5 ms absolute floor.
  const BenchDiffResult lagging = Diff(base, Report(0.63, 5000.0, 80.0));
  EXPECT_EQ(FindField(lagging, "p99_ms")->status, FieldStatus::kRegressed);
  // Faster is an improvement, not a regression.
  const BenchDiffResult faster = Diff(base, Report(0.63, 5000.0, 10.0));
  EXPECT_EQ(FindField(faster, "p99_ms")->status, FieldStatus::kImproved);
  EXPECT_EQ(faster.regressions(), 0);
}

TEST(BenchDiffTest, SmallMovesStayWithinTolerance) {
  const std::string base = Report(0.63, 5000.0, 40.0);
  // 1% quality wiggle, 10% qps wiggle, 2 ms latency wiggle: all within.
  const BenchDiffResult result = Diff(base, Report(0.625, 4600.0, 42.0));
  EXPECT_EQ(result.regressions(), 0);
  EXPECT_EQ(result.improvements(), 0);
}

TEST(BenchDiffTest, IgnoreTimingsSkipsMachineSpeedFields) {
  const std::string base = Report(0.63, 5000.0, 40.0);
  // Halved throughput, doubled latency — but quality intact.
  const BenchDiffResult result =
      Diff(base, Report(0.63, 2500.0, 80.0), /*ignore_timings=*/true);
  EXPECT_EQ(result.regressions(), 0);
  EXPECT_EQ(FindField(result, "qps_cold")->status, FieldStatus::kSkipped);
  EXPECT_EQ(FindField(result, "p99_ms")->status, FieldStatus::kSkipped);
  EXPECT_EQ(FindField(result, "wall_clock_s")->status, FieldStatus::kSkipped);
  // Quality fields are still judged.
  EXPECT_EQ(FindField(result, "cells.HGT.ndcg@3")->status, FieldStatus::kOk);

  // And a quality drop still fails even with timings ignored.
  const BenchDiffResult worse =
      Diff(base, Report(0.40, 2500.0, 80.0), /*ignore_timings=*/true);
  EXPECT_EQ(worse.regressions(), 1);
}

// ---------------------------------------------------------------------------
// Meta refusal + structural cases

TEST(BenchDiffTest, MetaMismatchRefusesComparison) {
  const BenchDiffResult result =
      Diff(Report(0.63, 5000.0, 2.0), Report(0.63, 5000.0, 2.0, "1"));
  EXPECT_FALSE(result.comparable());
  ASSERT_EQ(result.meta_mismatches.size(), 1u);
  EXPECT_EQ(result.meta_mismatches[0], "threads: 4 vs 1");
  EXPECT_TRUE(result.fields.empty());
}

TEST(BenchDiffTest, OldFormatBaselineWithoutBuildMetaRefuses) {
  // A pre-metadata baseline has no build_type/sanitizer: absent vs present
  // must refuse, not silently pass.
  const std::string old_format =
      "{\"bench\":\"synthetic\",\"scale\":\"small\",\"seed_count\":1,"
      "\"threads\":4,\"values\":[]}";
  const BenchDiffResult result = Diff(old_format, Report(0.63, 5000.0, 2.0));
  EXPECT_FALSE(result.comparable());
  EXPECT_GE(result.meta_mismatches.size(), 2u);  // build_type + sanitizer
}

TEST(BenchDiffTest, MissingFieldRegressesNewFieldInforms) {
  const std::string base = Report(0.63, 5000.0, 2.0);
  std::string cand = base;
  // Drop p99_ms from the candidate, add a novel field.
  const size_t pos = cand.find("{\"label\":\"p99_ms\",\"value\":2},");
  ASSERT_NE(pos, std::string::npos);
  cand.erase(pos, std::string("{\"label\":\"p99_ms\",\"value\":2},").size());
  cand.insert(cand.rfind(']'), ",{\"label\":\"brand_new\",\"value\":1}");

  const BenchDiffResult result = Diff(base, cand);
  EXPECT_EQ(FindField(result, "p99_ms")->status, FieldStatus::kMissing);
  EXPECT_EQ(FindField(result, "brand_new")->status, FieldStatus::kNew);
  EXPECT_EQ(result.regressions(), 1);  // missing counts, new does not
}

TEST(BenchDiffTest, NonBenchDocumentIsInvalidArgument) {
  const auto result = DiffBenchReports(Parse("{\"not\":\"a bench\"}"),
                                       Parse(Report(0.63, 5000.0, 2.0)),
                                       BenchDiffOptions());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(BenchDiffTest, WorkloadShapeChangeFlagsEvenWhenSmall) {
  const std::string base = Report(0.63, 5000.0, 2.0);
  std::string cand = base;
  const size_t pos = cand.find("\"types_evaluated\":10");
  ASSERT_NE(pos, std::string::npos);
  cand.replace(pos, std::string("\"types_evaluated\":10").size(),
               "\"types_evaluated\":9");
  const BenchDiffResult result = Diff(base, cand);
  EXPECT_EQ(FindField(result, "cells.HGT.types_evaluated")->status,
            FieldStatus::kRegressed);
}

}  // namespace
}  // namespace o2sr::tools
