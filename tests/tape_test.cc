#include "nn/tape.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace o2sr::nn {
namespace {

Tensor Row(const std::vector<float>& v) {
  return Tensor::FromVector(1, static_cast<int>(v.size()), v);
}

TEST(TapeForwardTest, AddSubMulScale) {
  Tape tape;
  Value a = tape.Input(Row({1, 2, 3}));
  Value b = tape.Input(Row({10, 20, 30}));
  EXPECT_EQ(tape.value(tape.Add(a, b)).at(0, 2), 33.0f);
  EXPECT_EQ(tape.value(tape.Sub(b, a)).at(0, 0), 9.0f);
  EXPECT_EQ(tape.value(tape.Mul(a, b)).at(0, 1), 40.0f);
  EXPECT_EQ(tape.value(tape.Scale(a, 2.5f)).at(0, 2), 7.5f);
}

TEST(TapeForwardTest, AddNSumsAllInputs) {
  Tape tape;
  Value a = tape.Input(Row({1}));
  Value b = tape.Input(Row({2}));
  Value c = tape.Input(Row({3}));
  EXPECT_EQ(tape.value(tape.AddN({a, b, c})).at(0, 0), 6.0f);
}

TEST(TapeForwardTest, Activations) {
  Tape tape;
  Value x = tape.Input(Row({-2.0f, 0.0f, 3.0f}));
  const Tensor& relu = tape.value(tape.Relu(x));
  EXPECT_EQ(relu.at(0, 0), 0.0f);
  EXPECT_EQ(relu.at(0, 2), 3.0f);

  const Tensor& lrelu = tape.value(tape.LeakyRelu(x, 0.1f));
  EXPECT_FLOAT_EQ(lrelu.at(0, 0), -0.2f);
  EXPECT_EQ(lrelu.at(0, 2), 3.0f);

  const Tensor& sig = tape.value(tape.Sigmoid(x));
  EXPECT_NEAR(sig.at(0, 1), 0.5f, 1e-6);
  EXPECT_NEAR(sig.at(0, 2), 1.0f / (1.0f + std::exp(-3.0f)), 1e-6);

  const Tensor& th = tape.value(tape.Tanh(x));
  EXPECT_NEAR(th.at(0, 2), std::tanh(3.0f), 1e-6);
}

TEST(TapeForwardTest, SoftmaxRowsSumsToOne) {
  Tape tape;
  Value x = tape.Input(Tensor::FromVector(2, 3, {1, 2, 3, -1, -1, -1}));
  const Tensor& y = tape.value(tape.SoftmaxRows(x));
  for (int r = 0; r < 2; ++r) {
    double s = 0.0;
    for (int c = 0; c < 3; ++c) s += y.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
  // Uniform logits -> uniform probabilities.
  EXPECT_NEAR(y.at(1, 0), 1.0f / 3.0f, 1e-6);
  // Monotone in logits.
  EXPECT_LT(y.at(0, 0), y.at(0, 2));
}

TEST(TapeForwardTest, AddRowBroadcast) {
  Tape tape;
  Value x = tape.Input(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  Value b = tape.Input(Row({10, 20}));
  const Tensor& y = tape.value(tape.AddRowBroadcast(x, b));
  EXPECT_EQ(y.at(0, 0), 11.0f);
  EXPECT_EQ(y.at(1, 1), 24.0f);
}

TEST(TapeForwardTest, MulColBroadcast) {
  Tape tape;
  Value x = tape.Input(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  Value w = tape.Input(Tensor::FromVector(2, 1, {2, -1}));
  const Tensor& y = tape.value(tape.MulColBroadcast(x, w));
  EXPECT_EQ(y.at(0, 1), 4.0f);
  EXPECT_EQ(y.at(1, 0), -3.0f);
}

TEST(TapeForwardTest, ConcatCols) {
  Tape tape;
  Value a = tape.Input(Tensor::FromVector(2, 1, {1, 2}));
  Value b = tape.Input(Tensor::FromVector(2, 2, {3, 4, 5, 6}));
  const Tensor& y = tape.value(tape.ConcatCols({a, b}));
  ASSERT_EQ(y.cols(), 3);
  EXPECT_EQ(y.at(0, 0), 1.0f);
  EXPECT_EQ(y.at(0, 2), 4.0f);
  EXPECT_EQ(y.at(1, 1), 5.0f);
}

TEST(TapeForwardTest, RowwiseDot) {
  Tape tape;
  Value a = tape.Input(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  Value b = tape.Input(Tensor::FromVector(2, 2, {5, 6, 7, 8}));
  const Tensor& y = tape.value(tape.RowwiseDot(a, b));
  EXPECT_EQ(y.at(0, 0), 17.0f);
  EXPECT_EQ(y.at(1, 0), 53.0f);
}

TEST(TapeForwardTest, GatherRows) {
  Tape tape;
  Value x = tape.Input(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  const Tensor& y = tape.value(tape.GatherRows(x, {2, 0, 2}));
  ASSERT_EQ(y.rows(), 3);
  EXPECT_EQ(y.at(0, 0), 5.0f);
  EXPECT_EQ(y.at(1, 1), 2.0f);
  EXPECT_EQ(y.at(2, 1), 6.0f);
}

TEST(TapeForwardTest, SegmentSoftmaxNormalizesWithinSegments) {
  Tape tape;
  Value s = tape.Input(Tensor::FromVector(4, 1, {1, 1, 5, 7}));
  const Tensor& y = tape.value(tape.SegmentSoftmax(s, {0, 0, 1, 1}, 2));
  EXPECT_NEAR(y.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(y.at(1, 0), 0.5f, 1e-6);
  EXPECT_NEAR(y.at(2, 0) + y.at(3, 0), 1.0f, 1e-6);
  EXPECT_LT(y.at(2, 0), y.at(3, 0));
}

TEST(TapeForwardTest, SegmentSoftmaxSingletonIsOne) {
  Tape tape;
  Value s = tape.Input(Tensor::FromVector(1, 1, {-100.0f}));
  const Tensor& y = tape.value(tape.SegmentSoftmax(s, {0}, 1));
  EXPECT_NEAR(y.at(0, 0), 1.0f, 1e-6);
}

TEST(TapeForwardTest, SegmentSumAndMean) {
  Tape tape;
  Value x = tape.Input(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  const Tensor& sum = tape.value(tape.SegmentSum(x, {1, 1, 0}, 3));
  EXPECT_EQ(sum.at(1, 0), 4.0f);
  EXPECT_EQ(sum.at(1, 1), 6.0f);
  EXPECT_EQ(sum.at(0, 0), 5.0f);
  // Empty segment 2 stays zero.
  EXPECT_EQ(sum.at(2, 0), 0.0f);

  Tape tape2;
  Value x2 = tape2.Input(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  const Tensor& mean = tape2.value(tape2.SegmentMean(x2, {1, 1, 0}, 3));
  EXPECT_EQ(mean.at(1, 0), 2.0f);
  EXPECT_EQ(mean.at(0, 1), 6.0f);
  EXPECT_EQ(mean.at(2, 1), 0.0f);
}

TEST(TapeForwardTest, Losses) {
  Tape tape;
  Value p = tape.Input(Row({1, 2, 3}));
  Value t = tape.Input(Row({2, 2, 5}));
  EXPECT_NEAR(tape.value(tape.MseLoss(p, t)).at(0, 0), (1.0 + 0.0 + 4.0) / 3.0,
              1e-6);
  EXPECT_NEAR(tape.value(tape.MaeLoss(p, t)).at(0, 0), (1.0 + 0.0 + 2.0) / 3.0,
              1e-6);
  EXPECT_NEAR(tape.value(tape.MeanAll(p)).at(0, 0), 2.0, 1e-6);
}

TEST(TapeForwardTest, DropoutInferenceIsIdentity) {
  Rng rng(1);
  Tape tape(/*training=*/false);
  Value x = tape.Input(Row({1, 2, 3, 4}));
  Value y = tape.Dropout(x, 0.5, rng);
  EXPECT_EQ(y.id, x.id);  // identity: no new node
}

TEST(TapeForwardTest, DropoutTrainingZeroesAndRescales) {
  Rng rng(1);
  Tape tape(/*training=*/true);
  Value x = tape.Input(Tensor::Full(1, 1000, 1.0f));
  const Tensor& y = tape.value(tape.Dropout(x, 0.4, rng));
  int zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.6f, 1e-5);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.4, 0.05);
}

TEST(TapeBackwardTest, ParamGradientAccumulates) {
  ParameterStore store;
  Rng rng(1);
  Parameter* p = store.CreateNormal("p", 1, 2, 1.0, rng);
  Tape tape;
  Value v = tape.Param(p);
  // loss = mean(v * v): d/dv = 2v / n = v (n=2).
  Value loss = tape.MeanAll(tape.Mul(v, v));
  tape.Backward(loss);
  EXPECT_NEAR(p->grad.at(0, 0), p->value.at(0, 0), 1e-5);
  EXPECT_NEAR(p->grad.at(0, 1), p->value.at(0, 1), 1e-5);
}

TEST(TapeBackwardTest, ParamUsedTwiceAccumulatesBothPaths) {
  ParameterStore store;
  Rng rng(1);
  Parameter* p = store.CreateZeros("p", 1, 1);
  p->value.at(0, 0) = 3.0f;
  Tape tape;
  Value a = tape.Param(p);
  Value b = tape.Param(p);
  // loss = a * b = p^2 -> dp = 2p = 6.
  Value loss = tape.MeanAll(tape.Mul(a, b));
  tape.Backward(loss);
  EXPECT_NEAR(p->grad.at(0, 0), 6.0f, 1e-5);
}

}  // namespace
}  // namespace o2sr::nn
