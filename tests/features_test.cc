#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "features/analysis.h"
#include "features/order_stats.h"
#include "features/region_features.h"
#include "sim/dataset.h"

namespace o2sr::features {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 5000.0;
  cfg.city_height_m = 5000.0;
  cfg.num_store_types = 14;
  cfg.num_stores = 220;
  cfg.num_couriers = 110;
  cfg.num_days = 4;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 23;
  return cfg;
}

const sim::Dataset& Data() {
  static const sim::Dataset* data =
      new sim::Dataset(sim::GenerateDataset(TestConfig()));
  return *data;
}

const OrderStats& Stats() {
  static const OrderStats* stats = new OrderStats(Data());
  return *stats;
}

TEST(OrderStatsTest, TotalsMatchOrderLog) {
  double total = 0.0;
  for (int s = 0; s < Stats().num_regions(); ++s) {
    for (int a = 0; a < Stats().num_types(); ++a) {
      total += Stats().OrdersOfTypeInRegion(s, a);
    }
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(Data().orders.size()));
}

TEST(OrderStatsTest, PeriodBreakdownSumsToTotal) {
  for (int s = 0; s < Stats().num_regions(); s += 7) {
    for (int a = 0; a < Stats().num_types(); ++a) {
      double period_sum = 0.0;
      for (int p = 0; p < sim::kNumPeriods; ++p) {
        period_sum += Stats().OrdersOfTypeInRegionPeriod(p, s, a);
      }
      EXPECT_DOUBLE_EQ(period_sum, Stats().OrdersOfTypeInRegion(s, a));
    }
  }
}

TEST(OrderStatsTest, CustomerOrdersMatchOrderLog) {
  double total = 0.0;
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (int u = 0; u < Stats().num_regions(); ++u) {
      for (int a = 0; a < Stats().num_types(); ++a) {
        total += Stats().CustomerOrders(p, u, a);
      }
    }
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(Data().orders.size()));
}

TEST(OrderStatsTest, PairStatsAreConsistent) {
  // Recount one well-populated pair by hand.
  const sim::Order& probe = Data().orders[Data().orders.size() / 2];
  const int p = static_cast<int>(probe.period());
  int count = 0;
  double minutes = 0.0;
  for (const sim::Order& o : Data().orders) {
    if (static_cast<int>(o.period()) == p &&
        o.store_region == probe.store_region &&
        o.customer_region == probe.customer_region) {
      ++count;
      minutes += o.delivery_minutes();
    }
  }
  const PairStats* pair =
      Stats().Pair(p, probe.store_region, probe.customer_region);
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->transactions, count);
  EXPECT_NEAR(pair->mean_delivery_minutes(), minutes / count, 1e-9);
}

TEST(OrderStatsTest, UnobservedPairIsNull) {
  // A pair of far-apart corners should never transact.
  const int far_a = 0;
  const int far_b = Stats().num_regions() - 1;
  EXPECT_EQ(Stats().Pair(0, far_a, far_b), nullptr);
}

TEST(OrderStatsTest, FarthestDistanceBoundsMean) {
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    for (int s = 0; s < Stats().num_regions(); s += 5) {
      EXPECT_GE(Stats().FarthestDistance(p, s), Stats().MeanDistance(p, s));
    }
  }
}

TEST(OrderStatsTest, RushHourSupplyDemandRatioIsLower) {
  // Region-level supply-demand ratio averaged over busy regions must dip at
  // the noon rush relative to the afternoon.
  double noon = 0.0, afternoon = 0.0;
  int count = 0;
  for (int s = 0; s < Stats().num_regions(); ++s) {
    if (Stats().TotalStoreRegionOrders(s) < 50) continue;
    noon += Stats().SupplyDemandRatio(
        static_cast<int>(sim::Period::kNoonRush), s);
    afternoon += Stats().SupplyDemandRatio(
        static_cast<int>(sim::Period::kAfternoon), s);
    ++count;
  }
  ASSERT_GT(count, 5);
  EXPECT_LT(noon, afternoon);
}

TEST(RegionFeaturesTest, ShapeAndRange) {
  const nn::Tensor f = RegionFeatureExtractor::Compute(Data());
  EXPECT_EQ(f.rows(), Data().num_regions());
  EXPECT_EQ(f.cols(), RegionFeatureExtractor::kDim);
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_GE(f.data()[i], 0.0f);
    EXPECT_LE(f.data()[i], 1.0f);
  }
}

TEST(RegionFeaturesTest, DowntownHasRicherFeatures) {
  const nn::Tensor f = RegionFeatureExtractor::Compute(Data());
  const int center = Data().city.grid.RegionOf({2500.0, 2500.0});
  double center_sum = 0.0, corner_sum = 0.0;
  for (int c = 0; c < f.cols(); ++c) {
    center_sum += f.at(center, c);
    corner_sum += f.at(0, c);
  }
  EXPECT_GT(center_sum, corner_sum);
}

TEST(CommercialFeaturesTest, CompetitivenessInUnitRange) {
  const CommercialFeatures cf(Data());
  for (int r = 0; r < Data().num_regions(); r += 3) {
    double sum = 0.0;
    for (int a = 0; a < Data().num_types(); ++a) {
      const double c = cf.Competitiveness(r, a);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      sum += c;
    }
    // Shares of a region's own stores within the neighborhood can't exceed 1.
    EXPECT_LE(sum, 1.0 + 1e-9);
  }
}

TEST(CommercialFeaturesTest, ComplementarityNormalized) {
  const CommercialFeatures cf(Data());
  for (int r = 0; r < Data().num_regions(); r += 3) {
    for (int a = 0; a < Data().num_types(); ++a) {
      EXPECT_GE(cf.Complementarity(r, a), 0.0);
      EXPECT_LE(cf.Complementarity(r, a), 1.0);
    }
  }
}

TEST(CommercialFeaturesTest, EmptyRegionHasZeroCompetitiveness) {
  const CommercialFeatures cf(Data());
  // Find a region with no stores at all.
  std::vector<bool> has_store(Data().num_regions(), false);
  for (const auto& s : Data().stores) has_store[s.region] = true;
  for (int r = 0; r < Data().num_regions(); ++r) {
    if (has_store[r]) continue;
    for (int a = 0; a < Data().num_types(); ++a) {
      EXPECT_EQ(cf.Competitiveness(r, a), 0.0);
    }
    break;
  }
}

// ---- Motivation analyses (Fig. 1-5, Table II) ------------------------------

TEST(AnalysisTest, SupplyDemandBySlotShapes) {
  const auto series = SupplyDemandBySlot(Data());
  ASSERT_EQ(series.size(), static_cast<size_t>(sim::kSlotsPerDay));
  double max_orders = 0.0, max_couriers = 0.0;
  for (const auto& s : series) {
    max_orders = std::max(max_orders, s.orders_norm);
    max_couriers = std::max(max_couriers, s.couriers_norm);
  }
  EXPECT_DOUBLE_EQ(max_orders, 1.0);
  EXPECT_DOUBLE_EQ(max_couriers, 1.0);
  // Ratio dips at rush slots vs the afternoon (Fig. 1).
  EXPECT_LT(series[5].supply_demand_ratio, series[7].supply_demand_ratio);
  EXPECT_LT(series[9].supply_demand_ratio, series[7].supply_demand_ratio);
}

TEST(AnalysisTest, DeliveryTimeRatioCorrelationIsStronglyNegative) {
  EXPECT_LT(DeliveryTimeRatioCorrelation(Data()), -0.5);
}

TEST(AnalysisTest, DeliveryScopeShrinksAtRush) {
  const auto scope = DeliveryScopeByPeriod(Data());
  ASSERT_EQ(scope.size(), static_cast<size_t>(sim::kNumPeriods));
  const double noon = scope[static_cast<int>(sim::Period::kNoonRush)];
  const double afternoon = scope[static_cast<int>(sim::Period::kAfternoon)];
  EXPECT_GT(noon, 0.0);
  EXPECT_LT(noon, afternoon);
}

TEST(AnalysisTest, DeliveryTimeDistributionSharesSumToOne) {
  const auto dist = DeliveryTimeDistributionByPeriod(Data());
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    double sum = 0.0;
    for (double v : dist.share[p]) sum += v;
    if (sum == 0.0) continue;  // period may lack 2.5-3 km orders
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(AnalysisTest, RushHourShiftsDeliveryTimesRight) {
  const auto dist = DeliveryTimeDistributionByPeriod(Data());
  const auto& noon = dist.share[static_cast<int>(sim::Period::kNoonRush)];
  const auto& afternoon =
      dist.share[static_cast<int>(sim::Period::kAfternoon)];
  // Share of long deliveries (40+ minutes) is larger at the noon rush.
  const double noon_long = noon[3] + noon[4];
  const double afternoon_long = afternoon[3] + afternoon[4];
  EXPECT_GT(noon_long, afternoon_long);
}

TEST(AnalysisTest, TopTypesDifferAcrossPeriods) {
  const auto tops = TopTypesByPeriod(Data(), 3);
  ASSERT_EQ(tops.size(), static_cast<size_t>(sim::kNumPeriods));
  for (const auto& period : tops) {
    ASSERT_EQ(period.size(), 3u);
    EXPECT_GE(period[0].orders, period[1].orders);
    EXPECT_GE(period[1].orders, period[2].orders);
  }
  // Morning and night top types differ (Fig. 5).
  EXPECT_NE(tops[static_cast<int>(sim::Period::kMorning)][0].type,
            tops[static_cast<int>(sim::Period::kNight)][0].type);
}

TEST(AnalysisTest, PreferenceCorrelationIsPositiveAndDecaysSlowly) {
  // Table II: neighborhood customer preferences correlate with order counts
  // at every radius, with only small variation in the 1-3 km band and a
  // slow decay beyond. The paper reports ~0.72 on the (very dense) Eleme
  // market; the absolute level scales with store density, so this small
  // test dataset asserts the shape and the dense bench config reproduces
  // the level (see bench_table02_preference_correlation).
  // Note the test city is only 5 km wide, so radii are scaled down: beyond
  // ~half the city width the "neighborhood" degenerates into the whole city
  // and the statistic loses locality (a finite-size artifact the 10 km
  // bench config does not have).
  const double r1 = PreferenceOrderCorrelation(Data(), 1000.0);
  const double r2 = PreferenceOrderCorrelation(Data(), 2000.0);
  const double r3 = PreferenceOrderCorrelation(Data(), 3000.0);
  EXPECT_GT(r1, 0.2);
  EXPECT_GT(r2, 0.15);
  EXPECT_NEAR(r1, r2, 0.12);  // small differences at local radii
  EXPECT_GE(r2, r3 - 0.02);   // decays once the radius covers the city
}

TEST(AnalysisTest, PreferenceCorrelationGrowsWithMarketDensity) {
  // The paper's 0.72 arises in a dense market (~16+ stores per region).
  sim::SimConfig dense = TestConfig();
  dense.num_stores = 900;  // ~9 stores/region vs ~2 in the base config
  const sim::Dataset dense_data = sim::GenerateDataset(dense);
  EXPECT_GT(PreferenceOrderCorrelation(dense_data, 3000.0),
            PreferenceOrderCorrelation(Data(), 3000.0));
}

}  // namespace
}  // namespace o2sr::features
