#include "common/math_util.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace o2sr {
namespace {

TEST(EntropyTest, EmptyAndZeroInputsAreZero) {
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
}

TEST(EntropyTest, SingleCategoryHasZeroEntropy) {
  EXPECT_DOUBLE_EQ(Entropy({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({5.0, 0.0, 0.0}), 0.0);
}

TEST(EntropyTest, UniformDistributionIsLogN) {
  EXPECT_NEAR(Entropy({1.0, 1.0, 1.0, 1.0}), std::log(4.0), 1e-12);
  EXPECT_NEAR(Entropy({2.5, 2.5}), std::log(2.0), 1e-12);
}

TEST(EntropyTest, SkewLowersEntropy) {
  EXPECT_LT(Entropy({9.0, 1.0}), Entropy({5.0, 5.0}));
}

TEST(EntropyTest, InvariantToScaling) {
  EXPECT_NEAR(Entropy({1.0, 2.0, 3.0}), Entropy({10.0, 20.0, 30.0}), 1e-12);
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computed: x={1,2,3}, y={1,3,2} -> r = 0.5.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {1, 3, 2}), 0.5, 1e-12);
}

TEST(MeanVarianceTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(SampleVariance({5.0}), 0.0);
  EXPECT_NEAR(SampleVariance({2.0, 4.0, 6.0}), 4.0, 1e-12);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCase) {
  // I_{0.5}(a, a) = 0.5 for any a.
  EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 3.0, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(RegularizedIncompleteBeta(0.5, 0.5, 0.5), 0.5, 1e-10);
}

TEST(IncompleteBetaTest, KnownClosedForm) {
  // I_x(1, 1) = x (uniform distribution CDF).
  for (double x : {0.1, 0.37, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
  // I_x(2, 1) = x^2.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 1.0, 0.6), 0.36, 1e-10);
}

TEST(StudentTCdfTest, SymmetryAndCenter) {
  EXPECT_DOUBLE_EQ(StudentTCdf(0.0, 5.0), 0.5);
  EXPECT_NEAR(StudentTCdf(1.3, 7.0) + StudentTCdf(-1.3, 7.0), 1.0, 1e-12);
}

TEST(StudentTCdfTest, MatchesTableValues) {
  // t_{0.975, 10} = 2.228: CDF(2.228, 10) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
  // t_{0.95, 5} = 2.015.
  EXPECT_NEAR(StudentTCdf(2.015, 5.0), 0.95, 1e-3);
  // Large nu approaches the normal distribution: CDF(1.96, 1e6) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(WelchTTestTest, ClearlyDifferentSamplesAreSignificant) {
  std::vector<double> a = {10.0, 10.1, 9.9, 10.2, 9.8};
  std::vector<double> b = {5.0, 5.1, 4.9, 5.2, 4.8};
  const TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.t_statistic, 10.0);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(WelchTTestTest, IdenticalDistributionsAreNotSignificant) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {1.1, 1.9, 3.1, 3.9};
  const TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(WelchTTestTest, ConstantEqualSamples) {
  const TTestResult r = WelchTTest({2.0, 2.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  std::vector<double> v = {2.0, 4.0, 6.0};
  MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(MinMaxNormalizeTest, ConstantInputMapsToZero) {
  std::vector<double> v = {3.0, 3.0};
  MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  const std::vector<double> p = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const std::vector<double> p = Softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(ArgsortDescendingTest, OrdersByValueStable) {
  const std::vector<int> idx = ArgsortDescending({1.0, 3.0, 2.0, 3.0});
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 1);  // first 3.0 (stable)
  EXPECT_EQ(idx[1], 3);
  EXPECT_EQ(idx[2], 2);
  EXPECT_EQ(idx[3], 0);
}

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 3.0), 2.0);
}

}  // namespace
}  // namespace o2sr
