// Tests of the serving SLO monitor (obs/slo.h): bad-request
// classification, burn-rate math, rolling-window eviction, deterministic
// nearest-rank quantiles, env-knob parsing, gauge export and the JSON
// snapshot shape.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace o2sr::obs {
namespace {

SloOutcome Ok(double latency_ms) {
  SloOutcome o;
  o.latency_ms = latency_ms;
  return o;
}

TEST(SloConfigTest, FromEnvParsesAndRejectsGarbage) {
  ::setenv("O2SR_SERVE_SLO_MS", "12.5", 1);
  ::setenv("O2SR_SERVE_SLO_TARGET", "0.95", 1);
  SloConfig cfg = SloConfig::FromEnv();
  EXPECT_DOUBLE_EQ(cfg.slo_ms, 12.5);
  EXPECT_DOUBLE_EQ(cfg.target, 0.95);

  // Out-of-range values fall back to the defaults (with a warning).
  ::setenv("O2SR_SERVE_SLO_MS", "-3", 1);
  ::setenv("O2SR_SERVE_SLO_TARGET", "1.5", 1);
  cfg = SloConfig::FromEnv();
  EXPECT_DOUBLE_EQ(cfg.slo_ms, 50.0);
  EXPECT_DOUBLE_EQ(cfg.target, 0.99);

  // Empty counts as unset; malformed values are fatal (see death test).
  ::setenv("O2SR_SERVE_SLO_MS", "", 1);
  ::setenv("O2SR_SERVE_SLO_TARGET", "", 1);
  cfg = SloConfig::FromEnv();
  EXPECT_DOUBLE_EQ(cfg.slo_ms, 50.0);
  EXPECT_DOUBLE_EQ(cfg.target, 0.99);

  ::unsetenv("O2SR_SERVE_SLO_MS");
  ::unsetenv("O2SR_SERVE_SLO_TARGET");
  cfg = SloConfig::FromEnv();
  EXPECT_DOUBLE_EQ(cfg.slo_ms, 50.0);
  EXPECT_DOUBLE_EQ(cfg.target, 0.99);
}

TEST(SloConfigDeathTest, GarbageSloMsIsFatal) {
  ::setenv("O2SR_SERVE_SLO_MS", "fast", 1);
  EXPECT_DEATH(SloConfig::FromEnv(), "O2SR_SERVE_SLO_MS='fast'");
  ::unsetenv("O2SR_SERVE_SLO_MS");
}

TEST(SloMonitorTest, ClassifiesBadRequests) {
  SloConfig cfg;
  cfg.slo_ms = 10.0;
  cfg.target = 0.9;
  SloMonitor monitor(cfg);

  monitor.Record(Ok(1.0));                       // good
  monitor.Record(Ok(11.0));                      // over the objective
  SloOutcome shed = Ok(0.5);
  shed.shed = true;
  monitor.Record(shed);                          // bad: shed
  SloOutcome missed = Ok(2.0);
  missed.deadline_miss = true;
  monitor.Record(missed);                        // bad: deadline
  SloOutcome degraded = Ok(3.0);
  degraded.degraded = true;
  monitor.Record(degraded);                      // bad: stale tier

  const SloSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.requests, 5u);
  EXPECT_EQ(snap.bad, 4u);
  EXPECT_EQ(snap.shed, 1u);
  EXPECT_EQ(snap.deadline_miss, 1u);
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_EQ(snap.window_count, 5u);
  EXPECT_DOUBLE_EQ(snap.bad_fraction, 0.8);
  // burn = 0.8 / (1 - 0.9) = 8: the budget burns 8x too fast.
  EXPECT_DOUBLE_EQ(snap.burn_rate, 8.0);
  EXPECT_TRUE(snap.breached);
}

TEST(SloMonitorTest, BurnRateBelowOneIsNotBreached) {
  SloConfig cfg;
  cfg.slo_ms = 10.0;
  cfg.target = 0.9;  // 10% error budget
  SloMonitor monitor(cfg);
  for (int i = 0; i < 99; ++i) monitor.Record(Ok(1.0));
  monitor.Record(Ok(50.0));  // 1 bad in 100 = half the budget
  const SloSnapshot snap = monitor.Snapshot();
  EXPECT_DOUBLE_EQ(snap.bad_fraction, 0.01);
  EXPECT_NEAR(snap.burn_rate, 0.1, 1e-9);
  EXPECT_FALSE(snap.breached);
}

TEST(SloMonitorTest, WindowEvictsOldRequests) {
  SloConfig cfg;
  cfg.slo_ms = 10.0;
  cfg.window = 4;
  SloMonitor monitor(cfg);
  // Two bad then six good: the ring only remembers the last four.
  monitor.Record(Ok(100.0));
  monitor.Record(Ok(100.0));
  for (int i = 0; i < 6; ++i) monitor.Record(Ok(1.0));

  const SloSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.requests, 8u);   // lifetime keeps everything
  EXPECT_EQ(snap.bad, 2u);
  EXPECT_EQ(snap.window_count, 4u);
  EXPECT_EQ(snap.window_bad, 0u);  // the bad ones aged out
  EXPECT_DOUBLE_EQ(snap.bad_fraction, 0.0);
  EXPECT_DOUBLE_EQ(snap.burn_rate, 0.0);
  EXPECT_FALSE(snap.breached);
}

TEST(SloMonitorTest, NearestRankQuantilesAreExact) {
  SloConfig cfg;
  cfg.slo_ms = 1000.0;
  SloMonitor monitor(cfg);
  // 1..100 in shuffled-ish order; nearest rank over the sorted window.
  for (int i = 0; i < 100; ++i) {
    monitor.Record(Ok(static_cast<double>((i * 37) % 100 + 1)));
  }
  const SloSnapshot snap = monitor.Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50_ms, 51.0);
  EXPECT_DOUBLE_EQ(snap.p90_ms, 91.0);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 100.0);
  EXPECT_DOUBLE_EQ(snap.max_ms, 100.0);
}

TEST(SloMonitorTest, SingleAndEmptyWindows) {
  SloMonitor empty{SloConfig{}};
  const SloSnapshot none = empty.Snapshot();
  EXPECT_EQ(none.window_count, 0u);
  EXPECT_DOUBLE_EQ(none.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(none.burn_rate, 0.0);
  EXPECT_FALSE(none.breached);

  SloMonitor one{SloConfig{}};
  one.Record(Ok(7.0));
  const SloSnapshot single = one.Snapshot();
  EXPECT_DOUBLE_EQ(single.p50_ms, 7.0);
  EXPECT_DOUBLE_EQ(single.p99_ms, 7.0);
  EXPECT_DOUBLE_EQ(single.max_ms, 7.0);
}

TEST(SloMonitorTest, GaugesTrackTheWindow) {
  SloConfig cfg;
  cfg.slo_ms = 10.0;
  cfg.target = 0.5;  // big budget so burn stays small
  SloMonitor monitor(cfg, "slo_test.gauges");
  monitor.Record(Ok(1.0));
  monitor.Record(Ok(100.0));

  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo_test.gauges.bad_fraction")->value(),
                   0.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo_test.gauges.burn_rate")->value(),
                   1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo_test.gauges.breached")->value(),
                   1.0);
}

TEST(SloMonitorTest, InvalidConfigClampsToDefaults) {
  SloConfig bad;
  bad.slo_ms = -1.0;
  bad.target = 2.0;
  bad.window = 0;
  SloMonitor monitor(bad);
  EXPECT_DOUBLE_EQ(monitor.config().slo_ms, 50.0);
  EXPECT_DOUBLE_EQ(monitor.config().target, 0.99);
  EXPECT_GT(monitor.config().window, 0u);
}

TEST(SloSnapshotTest, ToJsonIsParseableAndFixedPrecision) {
  SloConfig cfg;
  cfg.slo_ms = 10.0;
  cfg.target = 0.9;
  SloMonitor monitor(cfg);
  monitor.Record(Ok(1.25));
  monitor.Record(Ok(100.0));
  const SloSnapshot snap = monitor.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_EQ(json, monitor.Snapshot().ToJson());  // deterministic

  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << json;
  EXPECT_DOUBLE_EQ(parsed->NumberOr("slo_ms", 0), 10.0);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("target", 0), 0.9);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("requests", 0), 2.0);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("bad", -1), 1.0);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("bad_fraction", 0), 0.5);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("burn_rate", 0), 5.0);
  ASSERT_NE(parsed->Find("breached"), nullptr);
  EXPECT_TRUE(parsed->Find("breached")->bool_value());
  EXPECT_DOUBLE_EQ(parsed->NumberOr("max_ms", 0), 100.0);
}

}  // namespace
}  // namespace o2sr::obs
