#include "core/o2siterec.h"

#include <gtest/gtest.h>

#include "core/o2siterec_recommender.h"
#include "eval/experiment.h"

namespace o2sr::core {
namespace {

sim::SimConfig TestConfig() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3500.0;
  cfg.city_height_m = 3500.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 140;
  cfg.num_couriers = 60;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 51;
  return cfg;
}

O2SiteRecConfig SmallModelConfig() {
  O2SiteRecConfig cfg;
  cfg.capacity.embedding_dim = 8;
  cfg.rec.embedding_dim = 16;
  cfg.rec.node_heads = 2;
  cfg.rec.time_heads = 2;
  cfg.epochs = 8;
  cfg.learning_rate = 5e-3;
  return cfg;
}

struct Fixture {
  sim::Dataset data;
  eval::Split split;

  Fixture() : data(sim::GenerateDataset(TestConfig())) {
    split = eval::SplitInteractions(data, eval::BuildInteractions(data),
                                    {0.8, /*seed=*/2});
  }
};

const Fixture& F() {
  static const Fixture* f = new Fixture();
  return *f;
}

TEST(O2SiteRecTest, VariantNamesAreDistinct) {
  EXPECT_STREQ(VariantName(O2SiteRecVariant::kFull), "O2-SiteRec");
  EXPECT_STRNE(VariantName(O2SiteRecVariant::kNoCapacity),
               VariantName(O2SiteRecVariant::kNoCapacityNoCustomer));
}

TEST(O2SiteRecTest, TrainingReducesLoss) {
  O2SiteRecConfig cfg = SmallModelConfig();
  cfg.epochs = 1;
  O2SiteRec one_epoch(F().data, F().split.train_orders, cfg);
  O2SR_CHECK_OK(one_epoch.Train(F().split.train));
  const double early_loss = one_epoch.final_loss();

  cfg.epochs = 25;
  O2SiteRec trained(F().data, F().split.train_orders, cfg);
  O2SR_CHECK_OK(trained.Train(F().split.train));
  EXPECT_LT(trained.final_loss(), early_loss * 0.7);
}

TEST(O2SiteRecTest, PredictionsInUnitRangeAndAligned) {
  O2SiteRec model(F().data, F().split.train_orders, SmallModelConfig());
  O2SR_CHECK_OK(model.Train(F().split.train));
  const std::vector<double> preds = model.Predict(F().split.test).value();
  ASSERT_EQ(preds.size(), F().split.test.size());
  for (double p : preds) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(O2SiteRecTest, UnknownRegionIsPredictError) {
  O2SiteRec model(F().data, F().split.train_orders, SmallModelConfig());
  O2SR_CHECK_OK(model.Train(F().split.train));
  // Find a region with no stores: scoring it must fail loudly instead of
  // silently returning 0 (the pre-redesign behavior).
  std::vector<bool> has_store(F().data.num_regions(), false);
  for (const auto& s : F().data.stores) has_store[s.region] = true;
  for (int r = 0; r < F().data.num_regions(); ++r) {
    if (has_store[r]) continue;
    InteractionList pairs = {{r, 0, 0.0, 0.0}};
    const auto result = model.Predict(pairs);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
    return;
  }
}

TEST(O2SiteRecTest, FitsTrainingSignalBetterThanConstant) {
  O2SiteRecConfig cfg = SmallModelConfig();
  cfg.epochs = 40;
  O2SiteRec model(F().data, F().split.train_orders, cfg);
  O2SR_CHECK_OK(model.Train(F().split.train));
  const std::vector<double> preds = model.Predict(F().split.train).value();
  double model_se = 0.0, const_se = 0.0, mean = 0.0;
  for (const auto& it : F().split.train) mean += it.target;
  mean /= F().split.train.size();
  for (size_t i = 0; i < preds.size(); ++i) {
    const double t = F().split.train[i].target;
    model_se += (preds[i] - t) * (preds[i] - t);
    const_se += (mean - t) * (mean - t);
  }
  EXPECT_LT(model_se, const_se);
}

TEST(O2SiteRecTest, CapacityModelPresenceFollowsVariant) {
  for (auto variant : {O2SiteRecVariant::kFull,
                       O2SiteRecVariant::kMeanNodeAggregation,
                       O2SiteRecVariant::kMeanTimeAggregation}) {
    O2SiteRecConfig cfg = SmallModelConfig();
    cfg.variant = variant;
    O2SiteRec model(F().data, F().split.train_orders, cfg);
    EXPECT_TRUE(model.has_capacity_model());
  }
  for (auto variant : {O2SiteRecVariant::kNoCapacity,
                       O2SiteRecVariant::kNoCapacityNoCustomer}) {
    O2SiteRecConfig cfg = SmallModelConfig();
    cfg.variant = variant;
    O2SiteRec model(F().data, F().split.train_orders, cfg);
    EXPECT_FALSE(model.has_capacity_model());
  }
}

TEST(O2SiteRecTest, AllVariantsTrainAndPredict) {
  for (auto variant :
       {O2SiteRecVariant::kFull, O2SiteRecVariant::kNoCapacity,
        O2SiteRecVariant::kNoCapacityNoCustomer,
        O2SiteRecVariant::kMeanNodeAggregation,
        O2SiteRecVariant::kMeanTimeAggregation}) {
    O2SiteRecConfig cfg = SmallModelConfig();
    cfg.epochs = 3;
    cfg.variant = variant;
    O2SiteRec model(F().data, F().split.train_orders, cfg);
    O2SR_CHECK_OK(model.Train(F().split.train));
    const std::vector<double> preds = model.Predict(F().split.test).value();
    ASSERT_EQ(preds.size(), F().split.test.size());
    double sum = 0.0;
    for (double p : preds) {
      ASSERT_TRUE(std::isfinite(p));
      sum += p;
    }
    EXPECT_GT(sum, 0.0) << VariantName(variant);
  }
}

TEST(O2SiteRecTest, NoCustomerVariantDropsCustomerEdges) {
  O2SiteRecConfig cfg = SmallModelConfig();
  cfg.variant = O2SiteRecVariant::kNoCapacityNoCustomer;
  O2SiteRec model(F().data, F().split.train_orders, cfg);
  for (int p = 0; p < sim::kNumPeriods; ++p) {
    EXPECT_TRUE(model.hetero_graph().Subgraph(p).su_edges.empty());
    EXPECT_TRUE(model.hetero_graph().Subgraph(p).ua_edges.empty());
  }
}

TEST(O2SiteRecTest, DeterministicGivenSeed) {
  auto run = [&]() {
    O2SiteRecConfig cfg = SmallModelConfig();
    cfg.epochs = 3;
    O2SiteRec model(F().data, F().split.train_orders, cfg);
    O2SR_CHECK_OK(model.Train(F().split.train));
    return model.Predict(F().split.test).value();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(O2SiteRecTest, DeliveryTimePredictionPositive) {
  O2SiteRecConfig cfg = SmallModelConfig();
  cfg.epochs = 10;
  O2SiteRec model(F().data, F().split.train_orders, cfg);
  O2SR_CHECK_OK(model.Train(F().split.train));
  const double minutes = model.PredictDeliveryMinutes(1, 3, 10);
  EXPECT_GT(minutes, 0.0);
  EXPECT_LT(minutes, 200.0);
}

TEST(O2SiteRecRecommenderTest, AdapterRoundTrip) {
  O2SiteRecConfig cfg = SmallModelConfig();
  cfg.epochs = 3;
  O2SiteRecRecommender adapter(cfg);
  EXPECT_EQ(adapter.Name(), "O2-SiteRec");
  TrainContext ctx;
  ctx.data = &F().data;
  ctx.visible_orders = &F().split.train_orders;
  ctx.train = &F().split.train;
  O2SR_CHECK_OK(adapter.Train(ctx));
  EXPECT_EQ(adapter.Predict(F().split.test).value().size(),
            F().split.test.size());
}

TEST(O2SiteRecRecommenderTest, PredictBeforeTrainFails) {
  O2SiteRecRecommender adapter(SmallModelConfig());
  const auto result = adapter.Predict(F().split.test);
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(O2SiteRecRecommenderTest, TrainRejectsNullContextFields) {
  O2SiteRecRecommender adapter(SmallModelConfig());
  TrainContext ctx;  // all required fields null
  EXPECT_EQ(adapter.Train(ctx).code(), common::StatusCode::kInvalidArgument);
}

TEST(O2SiteRecRecommenderTest, TrainHonorsContextPool) {
  // An explicit 2-thread pool in the context must give the same result as
  // the default pool (the determinism contract, exercised end to end).
  auto run = [&](exec::ThreadPool* pool) {
    O2SiteRecConfig cfg = SmallModelConfig();
    cfg.epochs = 2;
    O2SiteRecRecommender adapter(cfg);
    TrainContext ctx;
    ctx.data = &F().data;
    ctx.visible_orders = &F().split.train_orders;
    ctx.train = &F().split.train;
    ctx.pool = pool;
    O2SR_CHECK_OK(adapter.Train(ctx));
    return adapter.Predict(F().split.test).value();
  };
  exec::ThreadPool two(2, "exec.test_pool_ctx");
  const auto with_pool = run(&two);
  const auto default_pool = run(nullptr);
  ASSERT_EQ(with_pool.size(), default_pool.size());
  for (size_t i = 0; i < with_pool.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_pool[i], default_pool[i]);
  }
}

}  // namespace
}  // namespace o2sr::core
