// Numerical gradient checking for every differentiable tape operation.
// These tests are the foundation of trust for the model code: if they pass,
// backpropagation through arbitrary compositions of the ops is correct.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/parameter.h"
#include "nn/tape.h"

namespace o2sr::nn {
namespace {

// Builds a scalar loss from the parameters in `store`; called repeatedly
// with perturbed parameter values for finite differences.
using LossBuilder = std::function<Value(Tape&)>;

double EvalLoss(const LossBuilder& build) {
  Tape tape;
  Value loss = build(tape);
  return tape.value(loss).at(0, 0);
}

// Central-difference gradient check of every parameter scalar.
void CheckGradients(ParameterStore& store, const LossBuilder& build,
                    double eps = 1e-3, double tol = 2e-2) {
  store.ZeroGrads();
  {
    Tape tape;
    Value loss = build(tape);
    tape.Backward(loss);
  }
  for (const auto& p : store.params()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = EvalLoss(build);
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = EvalLoss(build);
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      const double denom = std::max({1.0, std::fabs(numeric),
                                     std::fabs(analytic)});
      EXPECT_NEAR(analytic / denom, numeric / denom, tol)
          << "param " << p->name << " index " << i << " analytic " << analytic
          << " numeric " << numeric;
    }
  }
}

class GradCheckTest : public ::testing::Test {
 protected:
  ParameterStore store_;
  Rng rng_{12345};
};

TEST_F(GradCheckTest, MatMul) {
  Parameter* a = store_.CreateNormal("a", 3, 4, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 4, 2, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    return t.MeanAll(t.MatMul(t.Param(a), t.Param(b)));
  });
}

TEST_F(GradCheckTest, AddSubMulScale) {
  Parameter* a = store_.CreateNormal("a", 2, 3, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 2, 3, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value x = t.Add(t.Param(a), t.Param(b));
    Value y = t.Sub(x, t.Param(b));
    Value z = t.Mul(y, t.Param(a));
    return t.MeanAll(t.Scale(z, 1.7f));
  });
}

TEST_F(GradCheckTest, AddN) {
  Parameter* a = store_.CreateNormal("a", 2, 2, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 2, 2, 0.5, rng_);
  Parameter* c = store_.CreateNormal("c", 2, 2, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value s = t.AddN({t.Param(a), t.Param(b), t.Param(c), t.Param(a)});
    return t.MeanAll(t.Mul(s, s));
  });
}

TEST_F(GradCheckTest, AddRowBroadcast) {
  Parameter* x = store_.CreateNormal("x", 3, 2, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 1, 2, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.AddRowBroadcast(t.Param(x), t.Param(b));
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, MulColBroadcast) {
  Parameter* x = store_.CreateNormal("x", 3, 2, 0.5, rng_);
  Parameter* w = store_.CreateNormal("w", 3, 1, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.MulColBroadcast(t.Param(x), t.Param(w));
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, ReluAwayFromKink) {
  Parameter* x = store_.CreateNormal("x", 2, 4, 1.0, rng_);
  // Shift values away from 0 to avoid the non-differentiable point.
  for (size_t i = 0; i < x->value.size(); ++i) {
    float& v = x->value.data()[i];
    if (std::fabs(v) < 0.1f) v = v < 0 ? -0.2f : 0.2f;
  }
  CheckGradients(store_, [&](Tape& t) {
    return t.MeanAll(t.Relu(t.Param(x)));
  });
}

TEST_F(GradCheckTest, LeakyRelu) {
  Parameter* x = store_.CreateNormal("x", 2, 4, 1.0, rng_);
  for (size_t i = 0; i < x->value.size(); ++i) {
    float& v = x->value.data()[i];
    if (std::fabs(v) < 0.1f) v = v < 0 ? -0.2f : 0.2f;
  }
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.LeakyRelu(t.Param(x), 0.2f);
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, SigmoidTanh) {
  Parameter* x = store_.CreateNormal("x", 2, 3, 0.8, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.Sigmoid(t.Param(x));
    Value z = t.Tanh(t.Param(x));
    return t.MeanAll(t.Mul(y, z));
  });
}

TEST_F(GradCheckTest, SoftmaxRows) {
  Parameter* x = store_.CreateNormal("x", 3, 4, 0.8, rng_);
  Parameter* w = store_.CreateNormal("w", 3, 4, 0.8, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.SoftmaxRows(t.Param(x));
    return t.MeanAll(t.Mul(y, t.Param(w)));
  });
}

TEST_F(GradCheckTest, ConcatCols) {
  Parameter* a = store_.CreateNormal("a", 2, 2, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 2, 3, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.ConcatCols({t.Param(a), t.Param(b)});
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, RowwiseDot) {
  Parameter* a = store_.CreateNormal("a", 3, 4, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 3, 4, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.RowwiseDot(t.Param(a), t.Param(b));
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, GatherRows) {
  Parameter* x = store_.CreateNormal("x", 4, 3, 0.5, rng_);
  const std::vector<int> index = {3, 1, 1, 0, 2};
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.GatherRows(t.Param(x), index);
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, SegmentSoftmax) {
  Parameter* s = store_.CreateNormal("s", 6, 1, 0.8, rng_);
  Parameter* w = store_.CreateNormal("w", 6, 1, 0.8, rng_);
  const std::vector<int> seg = {0, 0, 0, 1, 1, 2};
  CheckGradients(store_, [&](Tape& t) {
    Value a = t.SegmentSoftmax(t.Param(s), seg, 3);
    return t.MeanAll(t.Mul(a, t.Param(w)));
  });
}

TEST_F(GradCheckTest, SegmentSumAndMean) {
  Parameter* x = store_.CreateNormal("x", 5, 2, 0.5, rng_);
  const std::vector<int> seg = {0, 2, 2, 1, 0};
  CheckGradients(store_, [&](Tape& t) {
    Value a = t.SegmentSum(t.Param(x), seg, 3);
    Value b = t.SegmentMean(t.Param(x), seg, 3);
    return t.MeanAll(t.Mul(a, b));
  });
}

TEST_F(GradCheckTest, MseAndMaeLosses) {
  Parameter* p = store_.CreateNormal("p", 2, 3, 0.5, rng_);
  // Keep the target fixed (constant input).
  const Tensor target = Tensor::FromVector(2, 3, {1, -1, 0.5f, 2, 0, -0.5f});
  CheckGradients(store_, [&](Tape& t) {
    return t.MseLoss(t.Param(p), t.Input(target));
  });
  CheckGradients(store_, [&](Tape& t) {
    return t.MaeLoss(t.Param(p), t.Input(target));
  });
}

TEST_F(GradCheckTest, AttentionHeadComposition) {
  // A realistic composite: a single attention head over a tiny graph, i.e.
  // exactly the computation pattern of the paper's Aggre (Eq. 10-12).
  Parameter* node_emb = store_.CreateNormal("emb", 4, 3, 0.5, rng_);
  Parameter* wk = store_.CreateNormal("wk", 3, 3, 0.5, rng_);
  Parameter* wq = store_.CreateNormal("wq", 3, 3, 0.5, rng_);
  const std::vector<int> src = {1, 2, 3, 0, 2};
  const std::vector<int> dst = {0, 0, 0, 1, 1};
  CheckGradients(store_, [&](Tape& t) {
    Value emb = t.Param(node_emb);
    Value keys = t.MatMul(t.GatherRows(emb, src), t.Param(wk));
    Value queries = t.MatMul(t.GatherRows(emb, dst), t.Param(wq));
    Value scores = t.RowwiseDot(keys, queries);
    Value alpha = t.SegmentSoftmax(scores, dst, 2);
    Value messages = t.MulColBroadcast(keys, alpha);
    Value out = t.SegmentSum(messages, dst, 2);
    return t.MeanAll(t.Mul(out, out));
  },
                 /*eps=*/1e-3, /*tol=*/3e-2);
}

TEST_F(GradCheckTest, DeepMlpComposition) {
  Parameter* x = store_.CreateNormal("x", 3, 4, 0.5, rng_);
  Parameter* w1 = store_.CreateNormal("w1", 4, 5, 0.5, rng_);
  Parameter* w2 = store_.CreateNormal("w2", 5, 1, 0.5, rng_);
  const Tensor target = Tensor::Full(3, 1, 0.3f);
  CheckGradients(store_, [&](Tape& t) {
    Value h = t.Tanh(t.MatMul(t.Param(x), t.Param(w1)));
    Value out = t.Sigmoid(t.MatMul(h, t.Param(w2)));
    return t.MseLoss(out, t.Input(target));
  });
}

}  // namespace
}  // namespace o2sr::nn
