// Numerical gradient checking for every differentiable tape operation.
// These tests are the foundation of trust for the model code: if they pass,
// backpropagation through arbitrary compositions of the ops is correct.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/courier_capacity_model.h"
#include "core/hetero_rec_model.h"
#include "features/order_stats.h"
#include "graphs/geo_graph.h"
#include "graphs/hetero_graph.h"
#include "graphs/mobility_graph.h"
#include "nn/parameter.h"
#include "nn/tape.h"
#include "sim/dataset.h"

namespace o2sr::nn {
namespace {

// Builds a scalar loss from the parameters in `store`; called repeatedly
// with perturbed parameter values for finite differences.
using LossBuilder = std::function<Value(Tape&)>;

double EvalLoss(const LossBuilder& build) {
  Tape tape;
  Value loss = build(tape);
  return tape.value(loss).at(0, 0);
}

// Central-difference gradient check of every parameter scalar. `stride`
// subsamples the scalars within each parameter (still touching every
// parameter tensor) so whole-model checks stay fast.
void CheckGradients(ParameterStore& store, const LossBuilder& build,
                    double eps = 1e-3, double tol = 2e-2,
                    size_t stride = 1) {
  store.ZeroGrads();
  {
    Tape tape;
    Value loss = build(tape);
    tape.Backward(loss);
  }
  for (const auto& p : store.params()) {
    for (size_t i = 0; i < p->value.size(); i += stride) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = EvalLoss(build);
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = EvalLoss(build);
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      const double denom = std::max({1.0, std::fabs(numeric),
                                     std::fabs(analytic)});
      EXPECT_NEAR(analytic / denom, numeric / denom, tol)
          << "param " << p->name << " index " << i << " analytic " << analytic
          << " numeric " << numeric;
    }
  }
}

class GradCheckTest : public ::testing::Test {
 protected:
  ParameterStore store_;
  Rng rng_{12345};
};

TEST_F(GradCheckTest, MatMul) {
  Parameter* a = store_.CreateNormal("a", 3, 4, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 4, 2, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    return t.MeanAll(t.MatMul(t.Param(a), t.Param(b)));
  });
}

TEST_F(GradCheckTest, AddSubMulScale) {
  Parameter* a = store_.CreateNormal("a", 2, 3, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 2, 3, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value x = t.Add(t.Param(a), t.Param(b));
    Value y = t.Sub(x, t.Param(b));
    Value z = t.Mul(y, t.Param(a));
    return t.MeanAll(t.Scale(z, 1.7f));
  });
}

TEST_F(GradCheckTest, AddN) {
  Parameter* a = store_.CreateNormal("a", 2, 2, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 2, 2, 0.5, rng_);
  Parameter* c = store_.CreateNormal("c", 2, 2, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value s = t.AddN({t.Param(a), t.Param(b), t.Param(c), t.Param(a)});
    return t.MeanAll(t.Mul(s, s));
  });
}

TEST_F(GradCheckTest, AddRowBroadcast) {
  Parameter* x = store_.CreateNormal("x", 3, 2, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 1, 2, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.AddRowBroadcast(t.Param(x), t.Param(b));
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, MulColBroadcast) {
  Parameter* x = store_.CreateNormal("x", 3, 2, 0.5, rng_);
  Parameter* w = store_.CreateNormal("w", 3, 1, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.MulColBroadcast(t.Param(x), t.Param(w));
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, ReluAwayFromKink) {
  Parameter* x = store_.CreateNormal("x", 2, 4, 1.0, rng_);
  // Shift values away from 0 to avoid the non-differentiable point.
  for (size_t i = 0; i < x->value.size(); ++i) {
    float& v = x->value.data()[i];
    if (std::fabs(v) < 0.1f) v = v < 0 ? -0.2f : 0.2f;
  }
  CheckGradients(store_, [&](Tape& t) {
    return t.MeanAll(t.Relu(t.Param(x)));
  });
}

TEST_F(GradCheckTest, LeakyRelu) {
  Parameter* x = store_.CreateNormal("x", 2, 4, 1.0, rng_);
  for (size_t i = 0; i < x->value.size(); ++i) {
    float& v = x->value.data()[i];
    if (std::fabs(v) < 0.1f) v = v < 0 ? -0.2f : 0.2f;
  }
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.LeakyRelu(t.Param(x), 0.2f);
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, SigmoidTanh) {
  Parameter* x = store_.CreateNormal("x", 2, 3, 0.8, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.Sigmoid(t.Param(x));
    Value z = t.Tanh(t.Param(x));
    return t.MeanAll(t.Mul(y, z));
  });
}

TEST_F(GradCheckTest, SoftmaxRows) {
  Parameter* x = store_.CreateNormal("x", 3, 4, 0.8, rng_);
  Parameter* w = store_.CreateNormal("w", 3, 4, 0.8, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.SoftmaxRows(t.Param(x));
    return t.MeanAll(t.Mul(y, t.Param(w)));
  });
}

TEST_F(GradCheckTest, ConcatCols) {
  Parameter* a = store_.CreateNormal("a", 2, 2, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 2, 3, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.ConcatCols({t.Param(a), t.Param(b)});
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, RowwiseDot) {
  Parameter* a = store_.CreateNormal("a", 3, 4, 0.5, rng_);
  Parameter* b = store_.CreateNormal("b", 3, 4, 0.5, rng_);
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.RowwiseDot(t.Param(a), t.Param(b));
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, GatherRows) {
  Parameter* x = store_.CreateNormal("x", 4, 3, 0.5, rng_);
  const std::vector<int> index = {3, 1, 1, 0, 2};
  CheckGradients(store_, [&](Tape& t) {
    Value y = t.GatherRows(t.Param(x), index);
    return t.MeanAll(t.Mul(y, y));
  });
}

TEST_F(GradCheckTest, SegmentSoftmax) {
  Parameter* s = store_.CreateNormal("s", 6, 1, 0.8, rng_);
  Parameter* w = store_.CreateNormal("w", 6, 1, 0.8, rng_);
  const std::vector<int> seg = {0, 0, 0, 1, 1, 2};
  CheckGradients(store_, [&](Tape& t) {
    Value a = t.SegmentSoftmax(t.Param(s), seg, 3);
    return t.MeanAll(t.Mul(a, t.Param(w)));
  });
}

TEST_F(GradCheckTest, SegmentSumAndMean) {
  Parameter* x = store_.CreateNormal("x", 5, 2, 0.5, rng_);
  const std::vector<int> seg = {0, 2, 2, 1, 0};
  CheckGradients(store_, [&](Tape& t) {
    Value a = t.SegmentSum(t.Param(x), seg, 3);
    Value b = t.SegmentMean(t.Param(x), seg, 3);
    return t.MeanAll(t.Mul(a, b));
  });
}

TEST_F(GradCheckTest, MseAndMaeLosses) {
  Parameter* p = store_.CreateNormal("p", 2, 3, 0.5, rng_);
  // Keep the target fixed (constant input).
  const Tensor target = Tensor::FromVector(2, 3, {1, -1, 0.5f, 2, 0, -0.5f});
  CheckGradients(store_, [&](Tape& t) {
    return t.MseLoss(t.Param(p), t.Input(target));
  });
  CheckGradients(store_, [&](Tape& t) {
    return t.MaeLoss(t.Param(p), t.Input(target));
  });
}

TEST_F(GradCheckTest, AttentionHeadComposition) {
  // A realistic composite: a single attention head over a tiny graph, i.e.
  // exactly the computation pattern of the paper's Aggre (Eq. 10-12).
  Parameter* node_emb = store_.CreateNormal("emb", 4, 3, 0.5, rng_);
  Parameter* wk = store_.CreateNormal("wk", 3, 3, 0.5, rng_);
  Parameter* wq = store_.CreateNormal("wq", 3, 3, 0.5, rng_);
  const std::vector<int> src = {1, 2, 3, 0, 2};
  const std::vector<int> dst = {0, 0, 0, 1, 1};
  CheckGradients(store_, [&](Tape& t) {
    Value emb = t.Param(node_emb);
    Value keys = t.MatMul(t.GatherRows(emb, src), t.Param(wk));
    Value queries = t.MatMul(t.GatherRows(emb, dst), t.Param(wq));
    Value scores = t.RowwiseDot(keys, queries);
    Value alpha = t.SegmentSoftmax(scores, dst, 2);
    Value messages = t.MulColBroadcast(keys, alpha);
    Value out = t.SegmentSum(messages, dst, 2);
    return t.MeanAll(t.Mul(out, out));
  },
                 /*eps=*/1e-3, /*tol=*/3e-2);
}

TEST_F(GradCheckTest, DeepMlpComposition) {
  Parameter* x = store_.CreateNormal("x", 3, 4, 0.5, rng_);
  Parameter* w1 = store_.CreateNormal("w1", 4, 5, 0.5, rng_);
  Parameter* w2 = store_.CreateNormal("w2", 5, 1, 0.5, rng_);
  const Tensor target = Tensor::Full(3, 1, 0.3f);
  CheckGradients(store_, [&](Tape& t) {
    Value h = t.Tanh(t.MatMul(t.Param(x), t.Param(w1)));
    Value out = t.Sigmoid(t.MatMul(h, t.Param(w2)));
    return t.MseLoss(out, t.Input(target));
  });
}

// --- Whole-model checks ------------------------------------------------
//
// The op-level tests above certify each primitive; these run finite
// differences through the *actual* model forward passes, so a wiring bug
// (wrong segment index vector, a head silently detached from the loss,
// attention scores routed to the wrong relation) is caught even when every
// primitive is individually correct. The world is deliberately tiny — a
// 4-region-wide city with a handful of stores — and scalars are strided
// to keep the full-model sweep under a few seconds.

sim::SimConfig TinyWorld() {
  sim::SimConfig cfg;
  cfg.city_width_m = 2000.0;
  cfg.city_height_m = 2000.0;  // 4x4 regions at the 500 m default cell
  cfg.num_store_types = 4;
  cfg.num_stores = 18;
  cfg.num_couriers = 10;
  cfg.num_days = 1;
  cfg.peak_orders_per_region_slot = 5.0;
  cfg.seed = 97;
  return cfg;
}

class ModelGradCheckTest : public ::testing::Test {
 protected:
  ModelGradCheckTest()
      : data_(sim::GenerateDataset(TinyWorld())), stats_(data_) {}

  sim::Dataset data_;
  features::OrderStats stats_;
};

TEST_F(ModelGradCheckTest, MultiGraphAttentionAggregation) {
  // Full recommendation pipeline: node fusion, per-period multi-head
  // attention aggregation over S-U/S-A/U-A/A-S, time semantics-level
  // attention, prediction head (Eq. 7-16). Dropout off: finite differences
  // need a deterministic loss.
  graphs::HeteroMultiGraph graph(data_, stats_);
  core::HeteroRecConfig cfg;
  cfg.embedding_dim = 4;
  cfg.layers = 1;
  cfg.node_heads = 2;
  cfg.time_heads = 2;
  cfg.dropout = 0.0;
  ParameterStore store;
  Rng rng(3);
  core::HeteroRecModel model(&graph, cfg, /*capacity_edge_dim=*/0, &store,
                             rng);
  ASSERT_GE(graph.num_store_nodes(), 2);
  const std::vector<int> pair_nodes = {0, 1, 0};
  const std::vector<int> pair_types = {0, 1, 2};
  CheckGradients(
      store,
      [&](Tape& t) {
        Rng drng(0);  // unused: dropout is 0
        std::vector<core::HeteroRecModel::PeriodEmbeddings> periods;
        for (int p = 0; p < sim::kNumPeriods; ++p) {
          periods.push_back(model.ForwardPeriod(t, p, Value{}, drng));
        }
        Value pred = model.PredictPairs(t, periods, pair_nodes, pair_types);
        return t.MeanAll(t.Mul(pred, pred));
      },
      /*eps=*/2e-3, /*tol=*/5e-2, /*stride=*/3);
}

TEST_F(ModelGradCheckTest, CapacityModelReconstructionHeads) {
  // Geographic + mobility aggregation and the delivery-time head, through
  // the all-period reconstruction loss O1 (Eq. 2-6).
  graphs::GeoGraph geo(data_.city.grid);
  graphs::MobilityMultiGraph mobility(stats_);
  ASSERT_GT(mobility.TotalEdges(), 0u);
  core::CourierCapacityConfig cfg;
  cfg.embedding_dim = 4;
  ParameterStore store;
  Rng rng(3);
  core::CourierCapacityModel model(geo, mobility, cfg, &store, rng);
  CheckGradients(
      store,
      [&](Tape& t) { return model.ReconstructionLoss(t); },
      /*eps=*/2e-3, /*tol=*/5e-2, /*stride=*/2);
}

}  // namespace
}  // namespace o2sr::nn
