#include "core/site_recommendation.h"

#include <set>

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace o2sr::core {
namespace {

struct Fixture {
  sim::Dataset data;
  std::unique_ptr<O2SiteRec> model;

  Fixture() : data(MakeData()) {
    const eval::Split split = eval::SplitInteractions(
        data, eval::BuildInteractions(data), {0.8, /*seed=*/2});
    O2SiteRecConfig cfg;
    cfg.capacity.embedding_dim = 8;
    cfg.rec.embedding_dim = 16;
    cfg.rec.node_heads = 2;
    cfg.epochs = 10;
    model = std::make_unique<O2SiteRec>(data, split.train_orders, cfg);
    O2SR_CHECK_OK(model->Train(split.train));
  }

  static sim::Dataset MakeData() {
    sim::SimConfig cfg;
    cfg.city_width_m = 3500.0;
    cfg.city_height_m = 3500.0;
    cfg.num_store_types = 8;
    cfg.num_stores = 140;
    cfg.num_couriers = 60;
    cfg.num_days = 3;
    cfg.peak_orders_per_region_slot = 4.0;
    cfg.seed = 81;
    return sim::GenerateDataset(cfg);
  }
};

const Fixture& F() {
  static const Fixture* f = new Fixture();
  return *f;
}

TEST(SiteRecommendationTest, ReturnsRankedSuggestions) {
  const SiteRecommendationService service(F().data, *F().model);
  SiteQuery query;
  query.type = 0;
  query.top_k = 5;
  const auto suggestions = service.Recommend(query);
  ASSERT_GT(suggestions.size(), 0u);
  ASSERT_LE(suggestions.size(), 5u);
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].score, suggestions[i].score);
  }
}

TEST(SiteRecommendationTest, ExcludeExistingIsHonored) {
  const SiteRecommendationService service(F().data, *F().model);
  std::set<int> existing;
  for (const sim::Store& s : F().data.stores) {
    if (s.type == 0) existing.insert(s.region);
  }
  SiteQuery query;
  query.type = 0;
  query.top_k = 20;
  query.exclude_existing = true;
  for (const auto& s : service.Recommend(query)) {
    EXPECT_EQ(existing.count(s.region), 0u);
  }
  const size_t excluded_count = service.Recommend(query).size();
  query.exclude_existing = false;
  EXPECT_GE(service.Recommend(query).size(), excluded_count);
}

TEST(SiteRecommendationTest, CenterDistanceFilter) {
  const SiteRecommendationService service(F().data, *F().model);
  SiteQuery query;
  query.type = 1;
  query.top_k = 50;
  query.max_center_distance_norm = 0.3;
  for (const auto& s : service.Recommend(query)) {
    EXPECT_LE(F().data.city.grid.CenterDistanceNorm(s.region), 0.3);
  }
}

TEST(SiteRecommendationTest, ExplanationsArePlausible) {
  const SiteRecommendationService service(F().data, *F().model);
  SiteQuery query;
  query.type = 0;
  query.top_k = 3;
  for (const auto& s : service.Recommend(query)) {
    EXPECT_GE(s.nearby_demand_per_day, 0.0);
    EXPECT_GT(s.noon_delivery_minutes, 0.0);
    EXPECT_GE(s.competitiveness, 0.0);
    EXPECT_LE(s.competitiveness, 1.0);
    EXPECT_GE(s.complementarity, 0.0);
    EXPECT_LE(s.complementarity, 1.0);
    EXPECT_GT(s.score, 0.0);
  }
}

TEST(SiteRecommendationTest, ReportMentionsTypeAndRegions) {
  const SiteRecommendationService service(F().data, *F().model);
  SiteQuery query;
  query.type = 0;
  query.top_k = 2;
  const auto suggestions = service.Recommend(query);
  const std::string report = service.FormatReport(query, suggestions);
  EXPECT_NE(report.find(F().data.type_catalog[0].name), std::string::npos);
  for (const auto& s : suggestions) {
    EXPECT_NE(report.find("region " + std::to_string(s.region)),
              std::string::npos);
  }
}

TEST(SiteRecommendationTest, EmptyResultReportIsGraceful) {
  const SiteRecommendationService service(F().data, *F().model);
  SiteQuery query;
  query.type = 0;
  query.max_center_distance_norm = -1.0;  // excludes everything
  const auto suggestions = service.Recommend(query);
  EXPECT_TRUE(suggestions.empty());
  EXPECT_NE(service.FormatReport(query, suggestions).find("no eligible"),
            std::string::npos);
}

}  // namespace
}  // namespace o2sr::core
