#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/o2siterec.h"
#include "eval/experiment.h"
#include "nn/parameter.h"
#include "nn/tape.h"
#include "nn/trainer.h"

namespace o2sr {
namespace {

using common::StatusCode;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Unit-level guardrail tests on a synthetic run (no real model needed: the
// runner only sees the scripted loss and whatever the hook leaves in the
// gradients).

struct SyntheticRun {
  nn::ParameterStore store;
  std::unique_ptr<nn::AdamOptimizer> adam;

  explicit SyntheticRun(double lr = 1e-2) {
    Rng rng(5);
    store.CreateXavier("w", 2, 2, rng);
    nn::AdamOptimizer::Options opt;
    opt.learning_rate = lr;
    adam = std::make_unique<nn::AdamOptimizer>(&store, opt);
  }
};

TEST(FaultToleranceTest, NonFiniteLossTriggersRollbackAndBackoff) {
  SyntheticRun run(/*lr=*/1e-2);
  bool poisoned = false;
  const nn::EpochFn epoch_fn = [&](int epoch) {
    if (epoch == 3 && !poisoned) {
      poisoned = true;
      return kNaN;
    }
    return 1.0 / (1.0 + epoch);
  };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(),
                                     /*epoch_rng=*/nullptr, 8, epoch_fn, {},
                                     {}, &report)
                  .ok());
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.epochs_run, 8);
  EXPECT_DOUBLE_EQ(report.final_learning_rate, 0.5e-2);  // halved once
}

TEST(FaultToleranceTest, NonFiniteGradientIsCaughtByName) {
  SyntheticRun run;
  bool poisoned = false;
  nn::TrainHooks hooks;
  hooks.post_backward = [&](int epoch, nn::ParameterStore& store) {
    if (epoch == 2 && !poisoned) {
      poisoned = true;
      store.params()[0]->grad.at(0, 0) =
          std::numeric_limits<float>::quiet_NaN();
    }
  };
  const nn::EpochFn epoch_fn = [](int epoch) { return 1.0 / (1.0 + epoch); };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(), nullptr, 6,
                                     epoch_fn, {}, hooks, &report)
                  .ok());
  EXPECT_EQ(report.recoveries, 1);
  // Recovery zeroed the poisoned gradients and training finished cleanly.
  for (const auto& p : run.store.params()) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(p->value.at(r, c)));
      }
    }
  }
}

TEST(FaultToleranceTest, PersistentFaultExhaustsRecoveryBudget) {
  SyntheticRun run;
  nn::GuardrailOptions options;
  options.max_recoveries = 2;
  // Every epoch produces a non-finite loss: unrecoverable.
  const nn::EpochFn epoch_fn = [](int) { return kNaN; };
  nn::TrainReport report;
  const common::Status st = nn::RunGuardedTraining(
      &run.store, run.adam.get(), nullptr, 8, epoch_fn, options, {}, &report);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("non-finite loss"), std::string::npos) << st;
  EXPECT_NE(st.message().find("2 rollbacks"), std::string::npos) << st;
  EXPECT_EQ(report.recoveries, 2);
}

TEST(FaultToleranceTest, DivergenceMonitorTrips) {
  SyntheticRun run;
  nn::GuardrailOptions options;
  options.divergence_factor = 10.0;
  options.divergence_patience = 2;
  options.max_recoveries = 1;
  // Healthy first epoch establishes best_loss = 1, then the loss explodes
  // and stays exploded — rollback cannot help, so the budget runs out.
  const nn::EpochFn epoch_fn = [](int epoch) {
    return epoch == 0 ? 1.0 : 500.0;
  };
  nn::TrainReport report;
  const common::Status st = nn::RunGuardedTraining(
      &run.store, run.adam.get(), nullptr, 20, epoch_fn, options, {}, &report);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("divergence"), std::string::npos) << st;
  EXPECT_EQ(report.recoveries, 1);
}

TEST(FaultToleranceTest, BackoffRespectsLearningRateFloor) {
  SyntheticRun run(/*lr=*/1e-2);
  nn::GuardrailOptions options;
  options.max_recoveries = 3;
  options.lr_backoff = 0.5;
  options.min_learning_rate = 4e-3;
  int faults = 0;
  const nn::EpochFn epoch_fn = [&](int epoch) {
    if (epoch == 1 && faults < 3) {
      ++faults;
      return kNaN;
    }
    return 1.0 / (1.0 + epoch);
  };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(), nullptr, 4,
                                     epoch_fn, options, {}, &report)
                  .ok());
  EXPECT_EQ(report.recoveries, 3);
  // 1e-2 -> 5e-3 -> 4e-3 (floored) -> 4e-3.
  EXPECT_DOUBLE_EQ(report.final_learning_rate, 4e-3);
}

TEST(FaultToleranceTest, CleanRunReportsNoRecoveries) {
  SyntheticRun run;
  const nn::EpochFn epoch_fn = [](int epoch) { return 1.0 / (1.0 + epoch); };
  nn::TrainReport report;
  ASSERT_TRUE(nn::RunGuardedTraining(&run.store, run.adam.get(), nullptr, 5,
                                     epoch_fn, {}, {}, &report)
                  .ok());
  EXPECT_EQ(report.recoveries, 0);
  EXPECT_EQ(report.epochs_run, 5);
  EXPECT_DOUBLE_EQ(report.final_loss, 1.0 / 5.0);
}

// ---------------------------------------------------------------------------
// End-to-end: the acceptance scenario of the fault-injection harness. A NaN
// poisoned into the O2-SiteRec gradients at epoch 5 must not kill the run —
// training rolls back, backs off the learning rate, and the final test
// metrics stay within 5% of the uninjected run.

sim::SimConfig SmallCity() {
  sim::SimConfig cfg;
  cfg.city_width_m = 3500.0;
  cfg.city_height_m = 3500.0;
  cfg.num_store_types = 8;
  cfg.num_stores = 140;
  cfg.num_couriers = 60;
  cfg.num_days = 3;
  cfg.peak_orders_per_region_slot = 4.0;
  cfg.seed = 51;
  return cfg;
}

core::O2SiteRecConfig SmallModel() {
  core::O2SiteRecConfig cfg;
  cfg.capacity.embedding_dim = 8;
  cfg.rec.embedding_dim = 16;
  cfg.rec.node_heads = 2;
  cfg.rec.time_heads = 2;
  cfg.epochs = 12;
  cfg.learning_rate = 5e-3;
  return cfg;
}

TEST(FaultInjectionTest, NaNAtEpochFiveRecoversWithComparableMetrics) {
  const sim::Dataset data = sim::GenerateDataset(SmallCity());
  const eval::Split split = eval::SplitInteractions(
      data, eval::BuildInteractions(data), {0.8, /*seed=*/2});

  // Uninjected reference.
  core::O2SiteRec clean(data, split.train_orders, SmallModel());
  ASSERT_TRUE(clean.Train(split.train).ok());
  const double clean_rmse =
      eval::Evaluate(split.test, clean.Predict(split.test).value()).rmse;
  ASSERT_GT(clean_rmse, 0.0);

  // Injected run: poison one gradient entry at epoch 5, exactly once.
  core::O2SiteRec injected(data, split.train_orders, SmallModel());
  bool poisoned = false;
  nn::TrainHooks hooks;
  hooks.post_backward = [&](int epoch, nn::ParameterStore& store) {
    if (epoch == 5 && !poisoned) {
      poisoned = true;
      store.params()[0]->grad.at(0, 0) =
          std::numeric_limits<float>::quiet_NaN();
    }
  };
  nn::TrainReport report;
  const common::Status st = injected.Train(split.train, hooks, &report);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_TRUE(poisoned);
  EXPECT_GE(report.recoveries, 1);
  EXPECT_LT(report.final_learning_rate, 5e-3);  // backoff happened

  const double injected_rmse =
      eval::Evaluate(split.test, injected.Predict(split.test).value()).rmse;
  EXPECT_NEAR(injected_rmse, clean_rmse, 0.05 * clean_rmse)
      << "clean=" << clean_rmse << " injected=" << injected_rmse;
}

TEST(FaultInjectionTest, UnrecoverableFaultReturnsResourceExhausted) {
  const sim::Dataset data = sim::GenerateDataset(SmallCity());
  const eval::Split split = eval::SplitInteractions(
      data, eval::BuildInteractions(data), {0.8, /*seed=*/2});

  core::O2SiteRecConfig cfg = SmallModel();
  cfg.epochs = 6;
  cfg.guard.max_recoveries = 1;
  core::O2SiteRec model(data, split.train_orders, cfg);
  nn::TrainHooks hooks;
  hooks.post_backward = [](int, nn::ParameterStore& store) {
    store.params()[0]->grad.at(0, 0) =
        std::numeric_limits<float>::quiet_NaN();
  };
  const common::Status st = model.Train(split.train, hooks);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // The error names the model variant and the poisoned parameter.
  EXPECT_NE(st.message().find("non-finite gradient"), std::string::npos)
      << st;
}

TEST(FaultInjectionTest, EmptyTrainingSetIsInvalidArgument) {
  const sim::Dataset data = sim::GenerateDataset(SmallCity());
  core::O2SiteRec model(data, data.orders, SmallModel());
  EXPECT_EQ(model.Train({}).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace o2sr
