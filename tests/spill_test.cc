#include "sim/spill.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "nn/serialize.h"
#include "sim/period.h"

namespace o2sr::sim {
namespace {

using common::StatusCode;

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

// Rows must satisfy the identity's bounds (customer_region inside
// [region_begin, region_end), store_region < num_regions, slot <
// kSlotsPerDay) — ParseShard now enforces them.
ShardColumns SampleColumns() {
  ShardColumns c;
  for (int i = 0; i < 5; ++i) {
    SpillRow row;
    row.store_region = 10 + i;
    row.customer_region = 8 + i;
    row.type = static_cast<uint16_t>(3 + i);
    row.slot = static_cast<uint8_t>(i);
    row.delivery_minutes = 25.5 + 0.25 * i;
    row.distance_m = 800.0 + 13.0 * i;
    c.Append(row);
  }
  return c;
}

ShardInfo SampleIdentity() {
  ShardInfo id;
  id.block = 2;
  id.epoch = 7;
  id.region_begin = 8;
  id.region_end = 16;
  id.num_regions = 64;
  id.config_hash = 0xfeedfacecafebeefULL;
  return id;
}

TEST(SpillFormatTest, RoundTripPreservesEveryColumn) {
  const ShardColumns columns = SampleColumns();
  ShardInfo info = SampleIdentity();
  const std::string bytes = SerializeShard(columns, &info);
  EXPECT_EQ(bytes.size(),
            kShardHeaderBytes + info.rows * 27 + kShardFooterBytes);

  ShardInfo parsed;
  ShardColumns out;
  ASSERT_TRUE(ParseShard(bytes, "test", &parsed, &out).ok());
  EXPECT_EQ(parsed.block, info.block);
  EXPECT_EQ(parsed.epoch, info.epoch);
  EXPECT_EQ(parsed.region_begin, info.region_begin);
  EXPECT_EQ(parsed.region_end, info.region_end);
  EXPECT_EQ(parsed.num_regions, info.num_regions);
  EXPECT_EQ(parsed.config_hash, info.config_hash);
  EXPECT_EQ(parsed.rows, columns.rows());
  EXPECT_EQ(parsed.payload_fnv, info.payload_fnv);
  EXPECT_EQ(out.store_region, columns.store_region);
  EXPECT_EQ(out.customer_region, columns.customer_region);
  EXPECT_EQ(out.type, columns.type);
  EXPECT_EQ(out.slot, columns.slot);
  EXPECT_EQ(out.delivery_minutes, columns.delivery_minutes);
  EXPECT_EQ(out.distance_m, columns.distance_m);
}

TEST(SpillFormatTest, ShardFileNameSortsByBlockThenEpoch) {
  EXPECT_EQ(ShardFileName(0, 0), "shard-b00000-e00000.o2sp");
  EXPECT_EQ(ShardFileName(12, 345), "shard-b00012-e00345.o2sp");
  EXPECT_LT(ShardFileName(1, 999), ShardFileName(2, 0));
}

// The headline integrity claim: flip ONE bit at EVERY byte offset of the
// file — header fields, each column block, the footer, and all three
// checksums themselves — and the parser must reject every single variant
// (and never crash or return rows).
TEST(SpillFormatTest, BitflipAtEveryByteOffsetIsDetected) {
  const ShardColumns columns = SampleColumns();
  ShardInfo info = SampleIdentity();
  const std::string bytes = SerializeShard(columns, &info);
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x10);
    ShardInfo parsed;
    ShardColumns out;
    const common::Status s = ParseShard(mutated, "mut", &parsed, &out);
    EXPECT_FALSE(s.ok()) << "bitflip at byte " << offset << " was accepted";
    EXPECT_TRUE(s.code() == StatusCode::kDataLoss ||
                s.code() == StatusCode::kFailedPrecondition)
        << "byte " << offset << ": " << s.ToString();
  }
}

// Same exhaustiveness for torn writes: every proper prefix must fail.
TEST(SpillFormatTest, TruncationAtEveryLengthIsDetected) {
  const ShardColumns columns = SampleColumns();
  ShardInfo info = SampleIdentity();
  const std::string bytes = SerializeShard(columns, &info);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ShardInfo parsed;
    const common::Status s =
        ParseShard(bytes.substr(0, len), "trunc", &parsed, nullptr);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << "truncation to " << len << " bytes: " << s.ToString();
  }
}

// A version bump with an otherwise-intact header is FAILED_PRECONDITION
// (incompatible writer), not DATA_LOSS.
TEST(SpillFormatTest, WrongVersionIsFailedPrecondition) {
  const ShardColumns columns = SampleColumns();
  ShardInfo info = SampleIdentity();
  std::string bytes = SerializeShard(columns, &info);
  uint32_t version = kShardVersion + 1;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  // Re-seal the header checksum so only the version disagrees.
  const uint64_t fnv =
      nn::Fnv1a(bytes.substr(0, kShardHeaderBytes - sizeof(uint64_t)));
  std::memcpy(bytes.data() + kShardHeaderBytes - sizeof(uint64_t), &fnv,
              sizeof(fnv));
  ShardInfo parsed;
  EXPECT_EQ(ParseShard(bytes, "ver", &parsed, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

// A shard whose checksums all pass but whose rows index outside the grid
// the header itself declares (the foreign-config / hand-forged case) must
// be DATA_LOSS, never handed to aggregation to index with.
TEST(SpillFormatTest, OutOfRangeRowsAreDataLossDespiteValidChecksums) {
  struct Case {
    const char* name;
    SpillRow row;
  };
  SpillRow bad_store;
  bad_store.store_region = 64;  // == num_regions
  bad_store.customer_region = 8;
  SpillRow bad_customer;
  bad_customer.store_region = 0;
  bad_customer.customer_region = 16;  // == region_end
  SpillRow bad_slot;
  bad_slot.store_region = 0;
  bad_slot.customer_region = 8;
  bad_slot.slot = kSlotsPerDay;
  for (const Case& c : {Case{"store_region", bad_store},
                        Case{"customer_region", bad_customer},
                        Case{"slot", bad_slot}}) {
    ShardColumns columns = SampleColumns();
    columns.Append(c.row);
    ShardInfo info = SampleIdentity();
    const std::string bytes = SerializeShard(columns, &info);
    ShardInfo parsed;
    ShardColumns out;
    const common::Status s = ParseShard(bytes, c.name, &parsed, &out);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << c.name << ": "
                                               << s.ToString();
    // Validate-only parses (manifest recovery) must reject them too.
    EXPECT_EQ(ParseShard(bytes, c.name, &parsed, nullptr).code(),
              StatusCode::kDataLoss)
        << c.name;
  }
}

TEST(SpillFormatTest, ValidateShardTypesBoundsTheTypeColumn) {
  const ShardColumns columns = SampleColumns();  // types 3..7
  EXPECT_TRUE(ValidateShardTypes(columns, 8, "ok").ok());
  EXPECT_EQ(ValidateShardTypes(columns, 7, "narrow").code(),
            StatusCode::kDataLoss);
}

TEST(SpillFormatTest, WriteReadRoundTripOnDisk) {
  const std::string dir = FreshDir("spill_roundtrip");
  const std::string path = dir + "/" + ShardFileName(2, 7);
  const ShardColumns columns = SampleColumns();
  const auto written = WriteShard(path, columns, SampleIdentity());
  ASSERT_TRUE(written.ok()) << written.status();
  ShardColumns out;
  const auto read = ReadShard(path, &out);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->payload_fnv, written->payload_fnv);
  EXPECT_EQ(out.delivery_minutes, columns.delivery_minutes);
}

TEST(SpillFaultTest, InjectedWriteCorruptionIsCaughtOnRead) {
  const std::string dir = FreshDir("spill_torn_write");
  const std::string path = dir + "/" + ShardFileName(0, 0);
  // The write path publishes the corrupted bytes (a torn write); only the
  // read path can notice.
  common::FaultInjector::ResetGlobalForTest("dataset.write=trunc:1.0");
  ASSERT_TRUE(WriteShard(path, SampleColumns(), SampleIdentity()).ok());
  common::FaultInjector::ResetGlobalForTest("");
  ShardColumns out;
  EXPECT_EQ(ReadShard(path, &out).status().code(), StatusCode::kDataLoss);
}

TEST(SpillFaultTest, InjectedReadBitflipIsCaught) {
  const std::string dir = FreshDir("spill_read_flip");
  const std::string path = dir + "/" + ShardFileName(0, 0);
  ASSERT_TRUE(WriteShard(path, SampleColumns(), SampleIdentity()).ok());
  common::FaultInjector::ResetGlobalForTest("dataset.read=bitflip:1.0");
  ShardColumns out;
  EXPECT_EQ(ReadShard(path, &out).status().code(), StatusCode::kDataLoss);
  common::FaultInjector::ResetGlobalForTest("");
  // The on-disk file itself is intact: a healthy read succeeds.
  EXPECT_TRUE(ReadShard(path, &out).ok());
}

TEST(SpillFaultTest, InjectedWriteErrorSurfacesAsUnavailable) {
  const std::string dir = FreshDir("spill_write_err");
  const std::string path = dir + "/" + ShardFileName(0, 0);
  common::FaultInjector::ResetGlobalForTest("dataset.write=error:1.0");
  EXPECT_EQ(WriteShard(path, SampleColumns(), SampleIdentity())
                .status()
                .code(),
            StatusCode::kUnavailable);
  common::FaultInjector::ResetGlobalForTest("");
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(QuarantineFileTest, MovesFileAndWritesReason) {
  const std::string dir = FreshDir("quarantine");
  const std::string path = dir + "/bad.o2sp";
  WriteFileBytes(path, "garbage bytes");
  const auto moved = nn::QuarantineFile(path, "checksum mismatch");
  ASSERT_TRUE(moved.ok()) << moved.status();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(*moved));
  EXPECT_EQ(*moved, dir + "/.quarantine/bad.o2sp");
  EXPECT_TRUE(std::filesystem::exists(*moved + ".reason"));
}

TEST(QuarantineFileTest, MissingFileIsNotFound) {
  const std::string dir = FreshDir("quarantine_missing");
  EXPECT_EQ(nn::QuarantineFile(dir + "/nope", "x").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace o2sr::sim
